//! RC thermal network construction and solvers.
//!
//! The network follows the HotSpot compact-model formulation: one node per
//! floorplan block in the silicon layer, lateral conductances between
//! adjacent blocks, a vertical path from each block through the thermal
//! interface into a five-node heat spreader (center + four peripheral
//! nodes), a five-node heat sink above that, and a lumped convection
//! resistance from the sink to ambient.
//!
//! With node temperatures `T`, capacitances `C`, system matrix `A`
//! (conductance Laplacian plus ambient-coupling diagonal), injected power
//! `P`, and ambient coupling `g_amb`:
//!
//! ```text
//!   C dT/dt = P + g_amb·T_amb − A·T
//! ```
//!
//! Steady state solves `A·T = P + g_amb·T_amb`. Transients default to
//! the exact matrix-exponential propagator (`T ← E·T + F·P`, see
//! [`crate::propagator`]) cached per step size, and fall back to
//! backward Euler with a cached LU factorization (unconditionally
//! stable, so the stiff package nodes cannot destabilize the
//! integration) when the propagator cannot be built or when the
//! reference integrator is selected explicitly.

use crate::linalg::{LinalgError, LuFactors, Matrix};
use crate::propagator::{PowerMap, Propagator, SolverBackend};
use crate::PackageConfig;
use dtm_floorplan::Floorplan;
use std::fmt;

/// Error constructing or using a thermal model.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// The underlying linear system could not be solved.
    Linalg(LinalgError),
    /// The floorplan failed validation.
    BadFloorplan(String),
    /// A power vector had the wrong length.
    PowerLength { expected: usize, got: usize },
    /// A non-finite or negative quantity was encountered.
    NotPhysical(String),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::Linalg(e) => write!(f, "linear solver failed: {e}"),
            ThermalError::BadFloorplan(msg) => write!(f, "invalid floorplan: {msg}"),
            ThermalError::PowerLength { expected, got } => {
                write!(f, "power vector has {got} entries, expected {expected}")
            }
            ThermalError::NotPhysical(msg) => write!(f, "non-physical model input: {msg}"),
        }
    }
}

impl std::error::Error for ThermalError {}

impl From<LinalgError> for ThermalError {
    fn from(e: LinalgError) -> Self {
        ThermalError::Linalg(e)
    }
}

/// A compact RC thermal model built from a floorplan and a package.
///
/// Node ordering: the first `n_blocks` nodes are the floorplan blocks (in
/// floorplan index order); package nodes (spreader, sink) follow.
///
/// # Examples
///
/// ```
/// use dtm_floorplan::Floorplan;
/// use dtm_thermal::{PackageConfig, ThermalModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fp = Floorplan::ppc_cmp(4);
/// let model = ThermalModel::new(&fp, &PackageConfig::default())?;
/// let power = vec![0.5; model.n_blocks()];
/// let temps = model.steady_state(&power)?;
/// assert!(temps.iter().all(|&t| t > 45.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ThermalModel {
    n_blocks: usize,
    n_nodes: usize,
    a: Matrix,
    cap: Vec<f64>,
    g_amb: Vec<f64>,
    ambient: f64,
    node_names: Vec<String>,
    /// Per-block fast-mode constriction resistance (K/W): sub-block
    /// hotspot excess per watt injected into the block.
    fast_r: Vec<f64>,
    /// Time constant of the sub-block mode (s).
    fast_tau: f64,
    /// LU factors of `a`, computed once so the many steady-state solves
    /// (leakage fixed-point iterations inside the initialization binary
    /// search) pay factorization once instead of per call. Identical to
    /// what [`Matrix::solve`] computes, so results are bit-identical.
    steady_lu: LuFactors,
}

impl ThermalModel {
    /// Builds the RC network for `floorplan` under `package`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::BadFloorplan`] if the floorplan fails
    /// validation, or [`ThermalError::NotPhysical`] for non-positive
    /// package parameters.
    pub fn new(floorplan: &Floorplan, package: &PackageConfig) -> Result<Self, ThermalError> {
        floorplan
            .validate()
            .map_err(|e| ThermalError::BadFloorplan(e.to_string()))?;
        for (name, v) in [
            ("t_silicon", package.t_silicon),
            ("k_silicon", package.k_silicon),
            ("c_silicon", package.c_silicon),
            ("t_interface", package.t_interface),
            ("k_interface", package.k_interface),
            ("spreader_side", package.spreader_side),
            ("spreader_thickness", package.spreader_thickness),
            ("sink_side", package.sink_side),
            ("sink_thickness", package.sink_thickness),
            ("k_copper", package.k_copper),
            ("c_copper", package.c_copper),
            ("r_convection", package.r_convection),
            ("local_tau", package.local_tau),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ThermalError::NotPhysical(format!("{name} = {v}")));
            }
        }

        let nb = floorplan.len();
        // Package nodes: spreader center, spreader N/E/S/W, sink center,
        // sink N/E/S/W.
        let sp_c = nb;
        let sp_edge = [nb + 1, nb + 2, nb + 3, nb + 4];
        let si_c = nb + 5;
        let si_edge = [nb + 6, nb + 7, nb + 8, nb + 9];
        let n = nb + 10;

        let mut g = Matrix::zeros(n, n); // pairwise conductances (symmetric)
        let mut g_amb = vec![0.0; n];

        // Lateral silicon conductances between adjacent blocks.
        for (i, j, edge) in floorplan.adjacency() {
            let dist = floorplan.center_distance(i, j);
            let cond = package.k_silicon * package.t_silicon * edge / dist;
            g[(i, j)] += cond;
            g[(j, i)] += cond;
        }

        // Vertical path: block -> spreader center, through half the die,
        // the TIM, and half the spreader thickness.
        let r_vert_per_area = package.t_silicon / (2.0 * package.k_silicon)
            + package.t_interface / package.k_interface
            + package.spreader_thickness / (2.0 * package.k_copper);
        for (i, b) in floorplan.blocks().iter().enumerate() {
            let cond = b.area() / r_vert_per_area;
            g[(i, sp_c)] += cond;
            g[(sp_c, i)] += cond;
        }

        // Spreader center <-> spreader periphery (lateral copper).
        let chip_w = floorplan.chip_width();
        let chip_h = floorplan.chip_height();
        let chip_area = floorplan.chip_area();
        let sp_side = package.spreader_side;
        let overhang = ((sp_side - chip_w.max(chip_h)) / 2.0).max(1e-4);
        for (k, &node) in sp_edge.iter().enumerate() {
            // N and S edges face the chip width; E and W face the height.
            let facing = if k % 2 == 0 { chip_w } else { chip_h };
            let cond = package.k_copper * package.spreader_thickness * facing / overhang;
            g[(sp_c, node)] += cond;
            g[(node, sp_c)] += cond;
        }

        // Spreader center -> sink center (vertical copper).
        let r_sp_si = package.spreader_thickness / (2.0 * package.k_copper)
            + package.sink_thickness / (2.0 * package.k_copper);
        let cond = chip_area / r_sp_si;
        g[(sp_c, si_c)] += cond;
        g[(si_c, sp_c)] += cond;

        // Spreader periphery -> sink periphery (vertical).
        let sp_area = sp_side * sp_side;
        let periph_area = ((sp_area - chip_area) / 4.0).max(1e-8);
        for (&spn, &sin) in sp_edge.iter().zip(&si_edge) {
            let cond = periph_area / r_sp_si;
            g[(spn, sin)] += cond;
            g[(sin, spn)] += cond;
        }

        // Sink center <-> sink periphery (lateral in the sink base).
        let sink_overhang = ((package.sink_side - sp_side) / 2.0 + overhang).max(1e-4);
        for &node in &si_edge {
            let cond = package.k_copper * package.sink_thickness * sp_side / sink_overhang;
            g[(si_c, node)] += cond;
            g[(node, si_c)] += cond;
        }

        // Convection: total conductance split over the five sink nodes in
        // proportion to footprint area.
        let sink_area = package.sink_side * package.sink_side;
        let g_conv_total = 1.0 / package.r_convection;
        let center_share = sp_area / sink_area;
        g_amb[si_c] = g_conv_total * center_share;
        for &node in &si_edge {
            g_amb[node] = g_conv_total * (1.0 - center_share) / 4.0;
        }

        // Capacitances.
        let mut cap = vec![0.0; n];
        for (i, b) in floorplan.blocks().iter().enumerate() {
            cap[i] = package.c_silicon * b.area() * package.t_silicon;
        }
        cap[sp_c] = package.c_copper * chip_area * package.spreader_thickness;
        for &node in &sp_edge {
            cap[node] = package.c_copper * periph_area * package.spreader_thickness;
        }
        cap[si_c] = package.c_copper * sp_area * package.sink_thickness;
        let sink_periph_area = ((sink_area - sp_area) / 4.0).max(1e-8);
        for &node in &si_edge {
            cap[node] = package.c_copper * sink_periph_area * package.sink_thickness;
        }

        // Assemble the system matrix A = L + diag(g_amb).
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            let mut diag = g_amb[i];
            for j in 0..n {
                if i != j {
                    let gij = g[(i, j)];
                    if gij != 0.0 {
                        a[(i, j)] = -gij;
                        diag += gij;
                    }
                }
            }
            a[(i, i)] = diag;
        }

        let mut node_names: Vec<String> = floorplan
            .blocks()
            .iter()
            .map(|b| b.name().to_string())
            .collect();
        node_names.extend(
            [
                "spreader_c",
                "spreader_n",
                "spreader_e",
                "spreader_s",
                "spreader_w",
                "sink_c",
                "sink_n",
                "sink_e",
                "sink_s",
                "sink_w",
            ]
            .iter()
            .map(|s| s.to_string()),
        );

        if !(package.local_constriction.is_finite() && package.local_constriction >= 0.0) {
            return Err(ThermalError::NotPhysical(format!(
                "local_constriction = {}",
                package.local_constriction
            )));
        }
        let fast_r = floorplan
            .blocks()
            .iter()
            .map(|b| package.local_constriction / b.area())
            .collect();

        let steady_lu = a.lu()?;
        Ok(ThermalModel {
            n_blocks: nb,
            n_nodes: n,
            a,
            cap,
            g_amb,
            ambient: package.ambient,
            node_names,
            fast_r,
            fast_tau: package.local_tau,
            steady_lu,
        })
    }

    /// Number of floorplan-block nodes (the length of a power vector).
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Total node count including package nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Ambient temperature (°C).
    pub fn ambient(&self) -> f64 {
        self.ambient
    }

    /// Node names (blocks first, then package nodes).
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// Heat capacitance of each node (J/K).
    pub fn capacitances(&self) -> &[f64] {
        &self.cap
    }

    /// Per-block fast-mode constriction resistance (K/W).
    pub fn fast_resistance(&self) -> &[f64] {
        &self.fast_r
    }

    /// Time constant of the sub-block fast mode (s).
    pub fn fast_tau(&self) -> f64 {
        self.fast_tau
    }

    /// Steady-state sub-block hotspot excess for a power vector (°C per
    /// block), i.e. `fast_r × power` element-wise.
    ///
    /// # Errors
    ///
    /// Fails on a wrong-length power vector.
    pub fn fast_excess_steady(&self, block_power: &[f64]) -> Result<Vec<f64>, ThermalError> {
        if block_power.len() != self.n_blocks {
            return Err(ThermalError::PowerLength {
                expected: self.n_blocks,
                got: block_power.len(),
            });
        }
        Ok(block_power
            .iter()
            .zip(&self.fast_r)
            .map(|(p, r)| p * r)
            .collect())
    }

    /// Validates a power vector (length, finiteness, non-negativity)
    /// without building the right-hand side.
    fn check_power(&self, block_power: &[f64]) -> Result<(), ThermalError> {
        if block_power.len() != self.n_blocks {
            return Err(ThermalError::PowerLength {
                expected: self.n_blocks,
                got: block_power.len(),
            });
        }
        for (i, &w) in block_power.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(ThermalError::NotPhysical(format!("power[{i}] = {w}")));
            }
        }
        Ok(())
    }

    fn rhs(&self, block_power: &[f64]) -> Result<Vec<f64>, ThermalError> {
        self.check_power(block_power)?;
        let mut p = vec![0.0; self.n_nodes];
        p[..self.n_blocks].copy_from_slice(block_power);
        for i in 0..self.n_nodes {
            p[i] += self.g_amb[i] * self.ambient;
        }
        Ok(p)
    }

    /// Steady-state temperatures (°C) of **all** nodes for the given
    /// per-block power (W).
    ///
    /// # Errors
    ///
    /// Fails if the power vector has the wrong length, contains negative
    /// or non-finite entries, or if the system is singular.
    pub fn steady_state(&self, block_power: &[f64]) -> Result<Vec<f64>, ThermalError> {
        let p = self.rhs(block_power)?;
        Ok(self.steady_lu.solve(&p))
    }

    /// Consistency checks: the system matrix must be a symmetric
    /// M-matrix-like Laplacian (positive diagonal, non-positive
    /// off-diagonals) with every node connected to ambient through the
    /// network.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NotPhysical`] describing the first
    /// violation.
    pub fn validate(&self) -> Result<(), ThermalError> {
        if self.a.asymmetry() > 1e-9 {
            return Err(ThermalError::NotPhysical(
                "conductance matrix is not symmetric".into(),
            ));
        }
        for i in 0..self.n_nodes {
            if self.a[(i, i)] <= 0.0 {
                return Err(ThermalError::NotPhysical(format!(
                    "node {i} has non-positive diagonal"
                )));
            }
            if self.cap[i] <= 0.0 {
                return Err(ThermalError::NotPhysical(format!(
                    "node {i} has non-positive capacitance"
                )));
            }
            for j in 0..self.n_nodes {
                if i != j && self.a[(i, j)] > 0.0 {
                    return Err(ThermalError::NotPhysical(format!(
                        "positive off-diagonal at ({i},{j})"
                    )));
                }
            }
        }
        // Zero power must give ambient everywhere; this also proves
        // global connectivity to ambient.
        let t = self.steady_state(&vec![0.0; self.n_blocks])?;
        for (i, &ti) in t.iter().enumerate() {
            if (ti - self.ambient).abs() > 1e-6 {
                return Err(ThermalError::NotPhysical(format!(
                    "node {i} not coupled to ambient (T={ti})"
                )));
            }
        }
        Ok(())
    }
}

/// Transient thermal integrator.
///
/// The default backend ([`SolverBackend::Propagator`]) advances the
/// whole step with the precomputed exact propagator `T ← E·T + F·p`
/// (one dense matvec, no substeps), rebuilding `E`/`F` only when `dt`
/// changes. The reference backend ([`SolverBackend::BackwardEuler`])
/// divides `dt` into equal substeps no longer than the configured
/// maximum and re-solves a cached LU factorization per substep; it is
/// also the automatic fallback when the propagator cannot be built
/// (singular or ill-conditioned `A`).
///
/// The solver owns its temperature state.
#[derive(Debug, Clone)]
pub struct TransientSolver {
    model: ThermalModel,
    temps: Vec<f64>,
    fast_delta: Vec<f64>,
    max_substep: f64,
    backend: SolverBackend,
    /// Latched when propagator construction failed: the solver then
    /// runs backward Euler for the rest of its life (see
    /// [`crate::propagator`] for the fallback conditions).
    prop_fallback: bool,
    cached: Option<(f64, LuFactors)>,
    prop: Option<std::sync::Arc<Propagator>>,
    rhs_buf: Vec<f64>,
    sol_buf: Vec<f64>,
}

impl TransientSolver {
    /// Creates a solver starting at ambient temperature everywhere,
    /// using the default exact-propagator backend.
    ///
    /// `max_substep` is the longest backward-Euler substep (s), used by
    /// the reference/fallback backend; 7 µs gives ~4 substeps per
    /// 27.8 µs power sample, resolving the fastest silicon time
    /// constants well.
    ///
    /// # Panics
    ///
    /// Panics if `max_substep` is not positive and finite.
    pub fn new(model: ThermalModel, max_substep: f64) -> Self {
        assert!(
            max_substep.is_finite() && max_substep > 0.0,
            "substep must be positive"
        );
        let temps = vec![model.ambient(); model.n_nodes()];
        let fast_delta = vec![0.0; model.n_blocks()];
        TransientSolver {
            model,
            temps,
            fast_delta,
            max_substep,
            backend: SolverBackend::default(),
            prop_fallback: false,
            cached: None,
            prop: None,
            rhs_buf: Vec::new(),
            sol_buf: Vec::new(),
        }
    }

    /// Selects the integration backend (builder style).
    pub fn with_backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The backend this solver was configured with. Note that a
    /// [`SolverBackend::Propagator`] solver may still be running
    /// backward Euler if construction fell back; see
    /// [`TransientSolver::in_fallback`].
    pub fn backend(&self) -> SolverBackend {
        self.backend
    }

    /// Whether a propagator-backend solver has permanently fallen back
    /// to backward Euler because `E`/`F` could not be built.
    pub fn in_fallback(&self) -> bool {
        self.prop_fallback
    }

    /// The underlying model.
    pub fn model(&self) -> &ThermalModel {
        &self.model
    }

    /// Current temperatures of the floorplan blocks (°C).
    pub fn block_temps(&self) -> &[f64] {
        &self.temps[..self.model.n_blocks()]
    }

    /// Current temperatures of all nodes (°C).
    pub fn node_temps(&self) -> &[f64] {
        &self.temps
    }

    /// Temperature of one block (°C).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block_temp(&self, block: usize) -> f64 {
        assert!(block < self.model.n_blocks(), "block index out of range");
        self.temps[block]
    }

    /// Resets every node to a uniform temperature (and clears the
    /// sub-block fast mode).
    pub fn set_uniform(&mut self, t: f64) {
        self.temps.fill(t);
        self.fast_delta.fill(0.0);
    }

    /// Sub-block hotspot excess per block (°C).
    pub fn fast_excess(&self) -> &[f64] {
        &self.fast_delta
    }

    /// Block *hotspot* temperatures: lumped node temperature plus the
    /// sub-block fast-mode excess. Thermal sensors read these.
    pub fn hot_block_temps(&self) -> Vec<f64> {
        self.temps[..self.model.n_blocks()]
            .iter()
            .zip(&self.fast_delta)
            .map(|(t, d)| t + d)
            .collect()
    }

    /// Initializes all nodes from the steady state of `block_power`,
    /// emulating a chip that has been running that load long enough for
    /// the package to equilibrate.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from [`ThermalModel::steady_state`].
    pub fn init_steady(&mut self, block_power: &[f64]) -> Result<(), ThermalError> {
        self.temps = self.model.steady_state(block_power)?;
        self.fast_delta = self.model.fast_excess_steady(block_power)?;
        Ok(())
    }

    /// Prebuilds the per-`dt` caches the active backend needs — the
    /// propagator's `E`/`F`, or backward Euler's LU factorization — so
    /// the first `step` at that `dt` doesn't pay one-time construction
    /// cost inside a timed loop. Stepping without prewarming is
    /// numerically identical; the caches are built on demand.
    ///
    /// # Errors
    ///
    /// Fails on a non-physical `dt` or a singular system. A propagator
    /// construction failure is not an error here: it latches the
    /// documented fallback and factors the backward-Euler LU instead.
    pub fn prewarm(&mut self, dt: f64) -> Result<(), ThermalError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ThermalError::NotPhysical(format!("dt = {dt}")));
        }
        if self.backend == SolverBackend::Propagator && !self.prop_fallback {
            self.ensure_propagator(dt);
        }
        if self.backend == SolverBackend::BackwardEuler || self.prop_fallback {
            self.ensure_lu(dt)?;
        }
        Ok(())
    }

    /// Builds (or rebuilds, after a `dt` change) the cached propagator;
    /// on failure latches the permanent backward-Euler fallback.
    fn ensure_propagator(&mut self, dt: f64) {
        let needs_build = match &self.prop {
            Some(p) => (p.dt() - dt).abs() > 1e-15,
            None => true,
        };
        if needs_build {
            // Served from the process-wide cache when an identical
            // thermal configuration already built one (bit-identical).
            match Propagator::shared(
                &self.model.a,
                &self.model.cap,
                &self.model.g_amb,
                self.model.ambient,
                self.model.n_blocks,
                PowerMap::Direct,
                dt,
            ) {
                Ok(p) => self.prop = Some(p),
                // Documented fallback: ill-conditioned or singular A.
                // Latch and run backward Euler from here on.
                Err(_) => self.prop_fallback = true,
            }
        }
    }

    /// Factors (or re-factors, after a `dt` change) the backward-Euler
    /// LU cache; returns the substep count and length for `dt`.
    fn ensure_lu(&mut self, dt: f64) -> Result<(usize, f64), ThermalError> {
        let n_sub = (dt / self.max_substep).ceil().max(1.0) as usize;
        let h = dt / n_sub as f64;
        let needs_factor = match &self.cached {
            Some((cached_h, _)) => (cached_h - h).abs() > 1e-15,
            None => true,
        };
        if needs_factor {
            let n = self.model.n_nodes();
            let mut m = self.model.a.clone();
            for i in 0..n {
                m[(i, i)] += self.model.cap[i] / h;
            }
            self.cached = Some((h, m.lu()?));
        }
        Ok((n_sub, h))
    }

    /// Advances the state by `dt` seconds with constant per-block power
    /// (W) over the interval.
    ///
    /// # Errors
    ///
    /// Fails on bad power vectors or a singular system.
    pub fn step(&mut self, block_power: &[f64], dt: f64) -> Result<(), ThermalError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ThermalError::NotPhysical(format!("dt = {dt}")));
        }
        if self.backend == SolverBackend::Propagator && !self.prop_fallback {
            self.model.check_power(block_power)?;
            self.ensure_propagator(dt);
            if !self.prop_fallback {
                let p = self.prop.as_ref().expect("propagator built above");
                p.advance(
                    &mut self.temps,
                    block_power,
                    &mut self.rhs_buf,
                    &mut self.sol_buf,
                );
                self.step_fast_mode(block_power, dt);
                return Ok(());
            }
        }

        let p = self.model.rhs(block_power)?;
        let (n_sub, h) = self.ensure_lu(dt)?;
        let (_, lu) = self.cached.as_ref().expect("factorization cached above");

        for _ in 0..n_sub {
            self.rhs_buf.clear();
            self.rhs_buf.extend(
                self.temps
                    .iter()
                    .zip(&self.model.cap)
                    .zip(&p)
                    .map(|((t, c), pi)| pi + c / h * t),
            );
            lu.solve_into(&self.rhs_buf, &mut self.sol_buf);
            std::mem::swap(&mut self.temps, &mut self.sol_buf);
        }

        self.step_fast_mode(block_power, dt);
        Ok(())
    }

    /// Batched-stepping handle for [`crate::batch`]: the shared
    /// propagator this solver would advance with for a step of `dt`, or
    /// `None` when it would take the backward-Euler path (configured
    /// backend, or the permanent fallback — possibly latched right here
    /// by the rebuild attempt, exactly as a scalar `step` would latch
    /// it).
    pub(crate) fn batch_prop(&mut self, dt: f64) -> Option<&std::sync::Arc<Propagator>> {
        if self.backend != SolverBackend::Propagator || self.prop_fallback {
            return None;
        }
        self.ensure_propagator(dt);
        if self.prop_fallback {
            return None;
        }
        self.prop.as_ref()
    }

    /// Validates a power vector exactly as `step` would before the
    /// propagator advance.
    pub(crate) fn batch_check_power(&self, block_power: &[f64]) -> Result<(), ThermalError> {
        self.model.check_power(block_power)
    }

    /// Mutable node temperatures, for the batched gather/scatter.
    pub(crate) fn temps_mut(&mut self) -> &mut [f64] {
        &mut self.temps
    }

    /// Applies the post-advance sub-block fast mode after a batched
    /// propagator step (the scalar path runs the same update).
    pub(crate) fn batch_fast_mode(&mut self, block_power: &[f64], dt: f64) {
        self.step_fast_mode(block_power, dt);
    }

    /// Sub-block fast mode: first-order relaxation toward `r·P` with an
    /// exact exponential update over the full step (shared by both
    /// backends).
    fn step_fast_mode(&mut self, block_power: &[f64], dt: f64) {
        let decay = (-dt / self.model.fast_tau).exp();
        for ((delta, &r), &pw) in self
            .fast_delta
            .iter_mut()
            .zip(&self.model.fast_r)
            .zip(block_power)
        {
            let target = r * pw;
            *delta = target + (*delta - target) * decay;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_floorplan::{Floorplan, UnitKind};

    fn model4() -> ThermalModel {
        ThermalModel::new(&Floorplan::ppc_cmp(4), &PackageConfig::default()).unwrap()
    }

    #[test]
    fn model_validates() {
        model4().validate().unwrap();
    }

    #[test]
    fn zero_power_steady_state_is_ambient() {
        let m = model4();
        let t = m.steady_state(&vec![0.0; m.n_blocks()]).unwrap();
        for ti in t {
            assert!((ti - m.ambient()).abs() < 1e-6);
        }
    }

    #[test]
    fn steady_state_rises_with_power() {
        let m = model4();
        let t_lo = m.steady_state(&vec![0.2; m.n_blocks()]).unwrap();
        let t_hi = m.steady_state(&vec![0.4; m.n_blocks()]).unwrap();
        for (lo, hi) in t_lo.iter().zip(&t_hi) {
            assert!(hi > lo);
        }
    }

    #[test]
    fn steady_state_is_linear_in_power() {
        // The RC network (without leakage feedback) is linear: doubling
        // power doubles the rise over ambient.
        let m = model4();
        let p: Vec<f64> = (0..m.n_blocks()).map(|i| 0.1 + 0.01 * i as f64).collect();
        let t1 = m.steady_state(&p).unwrap();
        let p2: Vec<f64> = p.iter().map(|w| w * 2.0).collect();
        let t2 = m.steady_state(&p2).unwrap();
        for (a, b) in t1.iter().zip(&t2) {
            let rise1 = a - m.ambient();
            let rise2 = b - m.ambient();
            assert!((rise2 - 2.0 * rise1).abs() < 1e-6);
        }
    }

    #[test]
    fn heated_block_is_hottest() {
        let m = model4();
        let fp = Floorplan::ppc_cmp(4);
        let rf = fp.block_of(0, UnitKind::IntRegFile).unwrap();
        let mut p = vec![0.0; m.n_blocks()];
        p[rf] = 3.0;
        let t = m.steady_state(&p).unwrap();
        let hottest = t[..m.n_blocks()]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(hottest, rf);
    }

    #[test]
    fn neighbor_blocks_warm_through_lateral_coupling() {
        let m = model4();
        let fp = Floorplan::ppc_cmp(4);
        let rf = fp.block_of(0, UnitKind::IntRegFile).unwrap();
        let fxu = fp.block_of(0, UnitKind::Fxu).unwrap();
        let far = fp.block_of(3, UnitKind::Fpu).unwrap();
        let mut p = vec![0.0; m.n_blocks()];
        p[rf] = 3.0;
        let t = m.steady_state(&p).unwrap();
        // Adjacent FXU warms more than a far-away block in another core.
        assert!(t[fxu] > t[far] + 0.5, "fxu={} far={}", t[fxu], t[far]);
    }

    #[test]
    fn wrong_power_length_is_rejected() {
        let m = model4();
        assert!(matches!(
            m.steady_state(&[0.0; 3]),
            Err(ThermalError::PowerLength { .. })
        ));
    }

    #[test]
    fn negative_power_is_rejected() {
        let m = model4();
        let mut p = vec![0.0; m.n_blocks()];
        p[0] = -1.0;
        assert!(matches!(
            m.steady_state(&p),
            Err(ThermalError::NotPhysical(_))
        ));
    }

    #[test]
    fn non_physical_package_is_rejected() {
        let fp = Floorplan::ppc_cmp(1);
        let pkg = PackageConfig {
            k_silicon: -5.0,
            ..PackageConfig::default()
        };
        assert!(matches!(
            ThermalModel::new(&fp, &pkg),
            Err(ThermalError::NotPhysical(_))
        ));
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let m = model4();
        let p = vec![0.5; m.n_blocks()];
        let expect = m.steady_state(&p).unwrap();
        let mut sim = TransientSolver::new(m, 50e-6);
        // Start *from* steady state of a different power level and run
        // long enough for silicon (not package) to settle.
        sim.init_steady(&p).unwrap();
        for _ in 0..100 {
            sim.step(&p, 1e-3).unwrap();
        }
        for (t, e) in sim.node_temps().iter().zip(&expect) {
            assert!((t - e).abs() < 0.05, "t={t} expected={e}");
        }
    }

    #[test]
    fn transient_moves_toward_new_equilibrium() {
        let m = model4();
        let nb = m.n_blocks();
        let mut sim = TransientSolver::new(m, 7e-6);
        sim.init_steady(&vec![0.2; nb]).unwrap();
        let t0 = sim.block_temps().to_vec();
        let hot = vec![1.0; nb];
        for _ in 0..40 {
            sim.step(&hot, 27.78e-6).unwrap();
        }
        // ~1.1 ms at 5× the power: every silicon block must have warmed.
        for (a, b) in t0.iter().zip(sim.block_temps()) {
            assert!(b > a);
        }
    }

    #[test]
    fn transient_cooling_monotone_after_power_off() {
        let m = model4();
        let nb = m.n_blocks();
        let mut sim = TransientSolver::new(m, 7e-6);
        sim.init_steady(&vec![0.8; nb]).unwrap();
        let off = vec![0.0; nb];
        let mut prev_max = sim
            .block_temps()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        for _ in 0..50 {
            sim.step(&off, 100e-6).unwrap();
            let max = sim
                .block_temps()
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(max <= prev_max + 1e-9);
            prev_max = max;
        }
    }

    #[test]
    fn transient_never_drops_below_ambient() {
        let m = model4();
        let nb = m.n_blocks();
        let amb = m.ambient();
        let mut sim = TransientSolver::new(m, 7e-6);
        let off = vec![0.0; nb];
        for _ in 0..20 {
            sim.step(&off, 1e-3).unwrap();
            for &t in sim.node_temps() {
                assert!(t >= amb - 1e-9);
            }
        }
    }

    #[test]
    fn substep_refactor_happens_once_for_constant_dt() {
        let m = model4();
        let nb = m.n_blocks();
        let mut sim = TransientSolver::new(m, 7e-6).with_backend(SolverBackend::BackwardEuler);
        let p = vec![0.3; nb];
        sim.step(&p, 27.78e-6).unwrap();
        let cached_h = sim.cached.as_ref().unwrap().0;
        sim.step(&p, 27.78e-6).unwrap();
        assert_eq!(sim.cached.as_ref().unwrap().0, cached_h);
    }

    #[test]
    fn propagator_is_the_default_backend_and_builds_once() {
        let m = model4();
        let nb = m.n_blocks();
        let mut sim = TransientSolver::new(m, 7e-6);
        assert_eq!(sim.backend(), SolverBackend::Propagator);
        let p = vec![0.3; nb];
        sim.step(&p, 27.78e-6).unwrap();
        assert!(!sim.in_fallback());
        assert!(sim.cached.is_none(), "propagator path must not factor LU");
        let dt0 = sim.prop.as_ref().unwrap().dt();
        sim.step(&p, 27.78e-6).unwrap();
        assert_eq!(sim.prop.as_ref().unwrap().dt(), dt0);
    }

    #[test]
    fn propagator_cache_invalidates_on_dt_change() {
        // Changing dt mid-run must recompute E/F (mirroring the LU
        // `cached` path) and produce exactly the trajectory a fresh
        // solver produces from the same state.
        let m = model4();
        let nb = m.n_blocks();
        let p = vec![0.6; nb];
        let (dt1, dt2) = (27.78e-6, 55.56e-6);

        let mut a = TransientSolver::new(m.clone(), 7e-6);
        a.init_steady(&vec![0.2; nb]).unwrap();
        for _ in 0..5 {
            a.step(&p, dt1).unwrap();
        }
        assert!((a.prop.as_ref().unwrap().dt() - dt1).abs() < 1e-18);

        // A fresh solver resumed from A's mid-run state, never having
        // seen dt1.
        let mut b = TransientSolver::new(m, 7e-6);
        b.temps = a.temps.clone();
        b.fast_delta = a.fast_delta.clone();

        for _ in 0..5 {
            a.step(&p, dt2).unwrap();
            b.step(&p, dt2).unwrap();
        }
        assert!((a.prop.as_ref().unwrap().dt() - dt2).abs() < 1e-18);
        // Bit-identical: a stale E(dt1) would diverge immediately.
        assert_eq!(a.node_temps(), b.node_temps());
        assert_eq!(a.fast_excess(), b.fast_excess());
    }

    #[test]
    fn backends_agree_on_a_transient() {
        let m = model4();
        let nb = m.n_blocks();
        let p = vec![0.8; nb];
        let mut exact = TransientSolver::new(m.clone(), 7e-6);
        let mut euler = TransientSolver::new(m, 7e-6).with_backend(SolverBackend::BackwardEuler);
        exact.init_steady(&vec![0.2; nb]).unwrap();
        euler.init_steady(&vec![0.2; nb]).unwrap();
        for _ in 0..40 {
            exact.step(&p, 27.78e-6).unwrap();
            euler.step(&p, 27.78e-6).unwrap();
        }
        for (x, y) in exact.block_temps().iter().zip(euler.block_temps()) {
            assert!((x - y).abs() < 0.05, "exact {x} vs euler {y}");
        }
    }

    #[test]
    fn bad_dt_is_rejected() {
        let m = model4();
        let nb = m.n_blocks();
        let mut sim = TransientSolver::new(m, 7e-6);
        assert!(sim.step(&vec![0.0; nb], 0.0).is_err());
        assert!(sim.step(&vec![0.0; nb], f64::NAN).is_err());
    }

    #[test]
    fn block_time_constants_are_milliseconds() {
        // Sanity for the DTM timescale story: silicon blocks should react
        // on ~1–100 ms scales (stop-go stalls are 30 ms).
        let m = model4();
        let nb = m.n_blocks();
        let mut sim = TransientSolver::new(m.clone(), 7e-6);
        sim.init_steady(&vec![2.0; nb]).unwrap();
        let hot_start = sim.block_temps()[0];
        // Power off for 100 ms: blocks must cool noticeably ("a few
        // degrees", per the study's stop-go description) but nowhere
        // near all the way to ambient.
        let off = vec![0.0; nb];
        for _ in 0..100 {
            sim.step(&off, 1e-3).unwrap();
        }
        let hot_end = sim.block_temps()[0];
        let drop = hot_start - hot_end;
        assert!(drop > 0.5, "cooled only {drop} °C in 100 ms");
        assert!(
            hot_end > m.ambient() + 1.0,
            "cooled all the way to ambient in 100 ms (too fast)"
        );
    }
}
