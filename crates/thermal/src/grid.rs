//! Grid-mode thermal model.
//!
//! HotSpot offers two formulations: the fast *block* model (one node per
//! floorplan unit — [`crate::ThermalModel`]) and the finer *grid* model
//! that meshes the die into uniform cells and resolves within-block
//! temperature gradients. This module implements the grid model for
//! steady-state analysis. It serves two purposes here:
//!
//! 1. **Cross-validation** — block-model temperatures should match the
//!    grid model's block-average temperatures.
//! 2. **Justifying the fast sub-block mode** — the block model carries a
//!    first-order "local constriction" correction
//!    ([`crate::PackageConfig::local_constriction`]); the grid model
//!    measures the true within-block peak-over-average gradient that
//!    correction stands in for.

use crate::linalg::{LuFactors, Matrix};
use crate::model::ThermalError;
use crate::propagator::{PowerMap, Propagator, SolverBackend};
use crate::PackageConfig;
use dtm_floorplan::Floorplan;

/// Grid resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridConfig {
    /// Cells across the chip width.
    pub cols: usize,
    /// Cells across the chip height.
    pub rows: usize,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig { cols: 16, rows: 24 }
    }
}

/// Steady-state grid thermal solver.
///
/// # Examples
///
/// ```
/// use dtm_floorplan::Floorplan;
/// use dtm_thermal::{GridConfig, GridThermalModel, PackageConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fp = Floorplan::ppc_cmp(1);
/// let grid = GridThermalModel::new(&fp, &PackageConfig::default(), GridConfig::default())?;
/// let power = vec![0.5; fp.len()];
/// let temps = grid.steady_state(&power)?;
/// let rf = fp.block_of(0, dtm_floorplan::UnitKind::IntRegFile).unwrap();
/// assert!(temps.block_max(rf) >= temps.block_mean(rf));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GridThermalModel {
    cols: usize,
    rows: usize,
    n_blocks: usize,
    /// `weights[block]` = list of `(cell, fraction_of_block_power)`.
    weights: Vec<Vec<(usize, f64)>>,
    /// `cells_of_block[block]` = cells with any overlap (for statistics).
    cells_of_block: Vec<Vec<usize>>,
    a: Matrix,
    g_amb: Vec<f64>,
    cap: Vec<f64>,
    ambient: f64,
}

/// Solved grid temperatures with block-level statistics.
#[derive(Debug, Clone)]
pub struct GridTemps<'m> {
    model: &'m GridThermalModel,
    temps: Vec<f64>,
}

impl GridTemps<'_> {
    /// Temperature of one cell (°C).
    ///
    /// # Panics
    ///
    /// Panics if the cell index is out of range.
    pub fn cell(&self, idx: usize) -> f64 {
        self.temps[idx]
    }

    /// All cell temperatures (cells first, then package nodes).
    pub fn cells(&self) -> &[f64] {
        &self.temps[..self.model.cols * self.model.rows]
    }

    /// Area-weighted mean temperature of a block (°C).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block_mean(&self, block: usize) -> f64 {
        let cells = &self.model.cells_of_block[block];
        assert!(!cells.is_empty(), "block covers no cells");
        cells.iter().map(|&c| self.temps[c]).sum::<f64>() / cells.len() as f64
    }

    /// Peak cell temperature within a block (°C).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block_max(&self, block: usize) -> f64 {
        self.model.cells_of_block[block]
            .iter()
            .map(|&c| self.temps[c])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The within-block gradient the block model's fast mode stands in
    /// for: peak minus mean (°C).
    pub fn block_excess(&self, block: usize) -> f64 {
        self.block_max(block) - self.block_mean(block)
    }
}

impl GridThermalModel {
    /// Meshes `floorplan` into `grid` cells over the same package as the
    /// block model.
    ///
    /// # Errors
    ///
    /// Fails on invalid floorplans or non-physical package parameters.
    pub fn new(
        floorplan: &Floorplan,
        package: &PackageConfig,
        grid: GridConfig,
    ) -> Result<Self, ThermalError> {
        floorplan
            .validate()
            .map_err(|e| ThermalError::BadFloorplan(e.to_string()))?;
        if grid.cols < 2 || grid.rows < 2 {
            return Err(ThermalError::NotPhysical(
                "grid must be at least 2×2".into(),
            ));
        }
        let (cols, rows) = (grid.cols, grid.rows);
        let n_cells = cols * rows;
        let chip_w = floorplan.chip_width();
        let chip_h = floorplan.chip_height();
        let cell_w = chip_w / cols as f64;
        let cell_h = chip_h / rows as f64;
        let cell_area = cell_w * cell_h;

        // Package nodes after the cells: spreader center + 4, sink
        // center + 4 (same topology as the block model).
        let sp_c = n_cells;
        let sp_edge = [n_cells + 1, n_cells + 2, n_cells + 3, n_cells + 4];
        let si_c = n_cells + 5;
        let si_edge = [n_cells + 6, n_cells + 7, n_cells + 8, n_cells + 9];
        let n = n_cells + 10;

        let mut g = Matrix::zeros(n, n);
        let mut g_amb = vec![0.0; n];

        // Cell↔cell lateral conduction.
        let g_horizontal = package.k_silicon * package.t_silicon * cell_h / cell_w;
        let g_vertical_lat = package.k_silicon * package.t_silicon * cell_w / cell_h;
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    let j = i + 1;
                    g[(i, j)] += g_horizontal;
                    g[(j, i)] += g_horizontal;
                }
                if r + 1 < rows {
                    let j = i + cols;
                    g[(i, j)] += g_vertical_lat;
                    g[(j, i)] += g_vertical_lat;
                }
            }
        }

        // Vertical path per cell (same per-area resistance as the block
        // model).
        let r_vert_per_area = package.t_silicon / (2.0 * package.k_silicon)
            + package.t_interface / package.k_interface
            + package.spreader_thickness / (2.0 * package.k_copper);
        for i in 0..n_cells {
            let cond = cell_area / r_vert_per_area;
            g[(i, sp_c)] += cond;
            g[(sp_c, i)] += cond;
        }

        // Package conduction, identical to the block model.
        let chip_area = floorplan.chip_area();
        let sp_side = package.spreader_side;
        let overhang = ((sp_side - chip_w.max(chip_h)) / 2.0).max(1e-4);
        for (k, &node) in sp_edge.iter().enumerate() {
            let facing = if k % 2 == 0 { chip_w } else { chip_h };
            let cond = package.k_copper * package.spreader_thickness * facing / overhang;
            g[(sp_c, node)] += cond;
            g[(node, sp_c)] += cond;
        }
        let r_sp_si = package.spreader_thickness / (2.0 * package.k_copper)
            + package.sink_thickness / (2.0 * package.k_copper);
        let cond = chip_area / r_sp_si;
        g[(sp_c, si_c)] += cond;
        g[(si_c, sp_c)] += cond;
        let sp_area = sp_side * sp_side;
        let periph_area = ((sp_area - chip_area) / 4.0).max(1e-8);
        for (&spn, &sin) in sp_edge.iter().zip(&si_edge) {
            let cond = periph_area / r_sp_si;
            g[(spn, sin)] += cond;
            g[(sin, spn)] += cond;
        }
        let sink_overhang = ((package.sink_side - sp_side) / 2.0 + overhang).max(1e-4);
        for &node in &si_edge {
            let cond = package.k_copper * package.sink_thickness * sp_side / sink_overhang;
            g[(si_c, node)] += cond;
            g[(node, si_c)] += cond;
        }
        let sink_area = package.sink_side * package.sink_side;
        let g_conv_total = 1.0 / package.r_convection;
        let center_share = sp_area / sink_area;
        g_amb[si_c] = g_conv_total * center_share;
        for &node in &si_edge {
            g_amb[node] = g_conv_total * (1.0 - center_share) / 4.0;
        }

        // Laplacian assembly.
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            let mut diag = g_amb[i];
            for j in 0..n {
                if i != j && g[(i, j)] != 0.0 {
                    a[(i, j)] = -g[(i, j)];
                    diag += g[(i, j)];
                }
            }
            a[(i, i)] = diag;
        }

        // Block → cell power distribution by overlap area.
        let mut weights = Vec::with_capacity(floorplan.len());
        let mut cells_of_block = Vec::with_capacity(floorplan.len());
        for b in floorplan.blocks() {
            let mut w = Vec::new();
            let mut cells = Vec::new();
            let c0 = ((b.left() / cell_w).floor() as usize).min(cols - 1);
            let c1 = (((b.right() / cell_w).ceil() as usize).max(1)).min(cols);
            let r0 = ((b.bottom() / cell_h).floor() as usize).min(rows - 1);
            let r1 = (((b.top() / cell_h).ceil() as usize).max(1)).min(rows);
            for r in r0..r1 {
                for c in c0..c1 {
                    let x0 = c as f64 * cell_w;
                    let y0 = r as f64 * cell_h;
                    let ox = (b.right().min(x0 + cell_w) - b.left().max(x0)).max(0.0);
                    let oy = (b.top().min(y0 + cell_h) - b.bottom().max(y0)).max(0.0);
                    let overlap = ox * oy;
                    if overlap > 1e-15 {
                        let idx = r * cols + c;
                        w.push((idx, overlap / b.area()));
                        // Only count cells substantially covered for the
                        // block statistics (avoids edge-sliver bias).
                        if overlap > 0.25 * cell_area {
                            cells.push(idx);
                        }
                    }
                }
            }
            if cells.is_empty() {
                // Block smaller than a cell: fall back to all overlaps.
                cells = w.iter().map(|&(i, _)| i).collect();
            }
            weights.push(w);
            cells_of_block.push(cells);
        }

        // Capacitances: silicon cells plus the same package lumps as the
        // block model.
        let mut cap = vec![0.0; n];
        for c in cap.iter_mut().take(n_cells) {
            *c = package.c_silicon * cell_area * package.t_silicon;
        }
        cap[sp_c] = package.c_copper * chip_area * package.spreader_thickness;
        for &node in &sp_edge {
            cap[node] = package.c_copper * periph_area * package.spreader_thickness;
        }
        cap[si_c] = package.c_copper * sp_area * package.sink_thickness;
        let sink_periph_area = ((sink_area - sp_area) / 4.0).max(1e-8);
        for &node in &si_edge {
            cap[node] = package.c_copper * sink_periph_area * package.sink_thickness;
        }

        Ok(GridThermalModel {
            cols,
            rows,
            n_blocks: floorplan.len(),
            weights,
            cells_of_block,
            a,
            g_amb,
            cap,
            ambient: package.ambient,
        })
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Number of floorplan blocks.
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Steady-state solve for per-block power (W).
    ///
    /// # Errors
    ///
    /// Fails on wrong-length or non-physical power vectors.
    pub fn steady_state(&self, block_power: &[f64]) -> Result<GridTemps<'_>, ThermalError> {
        if block_power.len() != self.n_blocks {
            return Err(ThermalError::PowerLength {
                expected: self.n_blocks,
                got: block_power.len(),
            });
        }
        let n = self.a.rows();
        let mut p = vec![0.0; n];
        for (b, &watts) in block_power.iter().enumerate() {
            if !watts.is_finite() || watts < 0.0 {
                return Err(ThermalError::NotPhysical(format!("power[{b}] = {watts}")));
            }
            for &(cell, frac) in &self.weights[b] {
                p[cell] += watts * frac;
            }
        }
        for i in 0..n {
            p[i] += self.g_amb[i] * self.ambient;
        }
        let temps = self.a.solve(&p)?;
        Ok(GridTemps { model: self, temps })
    }

    /// Validates a power vector without building the right-hand side.
    fn check_power(&self, block_power: &[f64]) -> Result<(), ThermalError> {
        if block_power.len() != self.n_blocks {
            return Err(ThermalError::PowerLength {
                expected: self.n_blocks,
                got: block_power.len(),
            });
        }
        for (b, &watts) in block_power.iter().enumerate() {
            if !watts.is_finite() || watts < 0.0 {
                return Err(ThermalError::NotPhysical(format!("power[{b}] = {watts}")));
            }
        }
        Ok(())
    }

    fn rhs(&self, block_power: &[f64]) -> Result<Vec<f64>, ThermalError> {
        self.check_power(block_power)?;
        let n = self.a.rows();
        let mut p = vec![0.0; n];
        for (b, &watts) in block_power.iter().enumerate() {
            for &(cell, frac) in &self.weights[b] {
                p[cell] += watts * frac;
            }
        }
        for i in 0..n {
            p[i] += self.g_amb[i] * self.ambient;
        }
        Ok(p)
    }
}

/// Transient integrator for the grid model, mirroring
/// [`crate::TransientSolver`]: the exact matrix-exponential propagator
/// by default (with the block→cell power weights folded into the input
/// matrix, so a step takes one dense matvec), backward Euler with a
/// cached LU factorization as the reference/fallback backend. Intended
/// for validation studies; the DTM simulations use the much cheaper
/// block model.
#[derive(Debug, Clone)]
pub struct GridTransient {
    model: GridThermalModel,
    temps: Vec<f64>,
    max_substep: f64,
    backend: SolverBackend,
    /// Latched when propagator construction failed (see
    /// [`crate::propagator`] for the fallback conditions).
    prop_fallback: bool,
    cached: Option<(f64, LuFactors)>,
    prop: Option<std::sync::Arc<Propagator>>,
    xbuf: Vec<f64>,
    sol_buf: Vec<f64>,
}

impl GridTransient {
    /// Creates a transient solver at ambient temperature with the
    /// default exact-propagator backend.
    ///
    /// # Panics
    ///
    /// Panics if `max_substep` is not positive and finite.
    pub fn new(model: GridThermalModel, max_substep: f64) -> Self {
        assert!(
            max_substep.is_finite() && max_substep > 0.0,
            "substep must be positive"
        );
        let temps = vec![model.ambient; model.a.rows()];
        GridTransient {
            model,
            temps,
            max_substep,
            backend: SolverBackend::default(),
            prop_fallback: false,
            cached: None,
            prop: None,
            xbuf: Vec::new(),
            sol_buf: Vec::new(),
        }
    }

    /// Selects the integration backend (builder style).
    pub fn with_backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The backend this solver was configured with.
    pub fn backend(&self) -> SolverBackend {
        self.backend
    }

    /// Whether a propagator-backend solver has permanently fallen back
    /// to backward Euler.
    pub fn in_fallback(&self) -> bool {
        self.prop_fallback
    }

    /// The underlying grid model.
    pub fn model(&self) -> &GridThermalModel {
        &self.model
    }

    /// Current temperatures viewed with block statistics.
    pub fn temps(&self) -> GridTemps<'_> {
        GridTemps {
            model: &self.model,
            temps: self.temps.clone(),
        }
    }

    /// Initializes from the steady state of `block_power`.
    ///
    /// # Errors
    ///
    /// See [`GridThermalModel::steady_state`].
    pub fn init_steady(&mut self, block_power: &[f64]) -> Result<(), ThermalError> {
        self.temps = self.model.steady_state(block_power)?.temps;
        Ok(())
    }

    /// Prebuilds the per-`dt` caches the active backend needs (the
    /// propagator, or the backward-Euler LU), so the first `step` at
    /// that `dt` doesn't pay construction cost inside a timed loop.
    /// Stepping without prewarming is numerically identical.
    ///
    /// # Errors
    ///
    /// Fails on a non-physical `dt` or a singular system; a propagator
    /// construction failure latches the fallback instead of erroring.
    pub fn prewarm(&mut self, dt: f64) -> Result<(), ThermalError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ThermalError::NotPhysical(format!("dt = {dt}")));
        }
        if self.backend == SolverBackend::Propagator && !self.prop_fallback {
            self.ensure_propagator(dt);
        }
        if self.backend == SolverBackend::BackwardEuler || self.prop_fallback {
            self.ensure_lu(dt)?;
        }
        Ok(())
    }

    /// Builds (or rebuilds, after a `dt` change) the cached propagator,
    /// folding the block→cell weights into `F`; on failure latches the
    /// permanent backward-Euler fallback.
    fn ensure_propagator(&mut self, dt: f64) {
        let needs_build = match &self.prop {
            Some(p) => (p.dt() - dt).abs() > 1e-15,
            None => true,
        };
        if needs_build {
            // Served from the process-wide cache when an identical
            // grid configuration already built one (bit-identical).
            match Propagator::shared(
                &self.model.a,
                &self.model.cap,
                &self.model.g_amb,
                self.model.ambient,
                self.model.n_blocks,
                PowerMap::Weighted(&self.model.weights),
                dt,
            ) {
                Ok(p) => self.prop = Some(p),
                Err(_) => self.prop_fallback = true,
            }
        }
    }

    /// Factors (or re-factors, after a `dt` change) the backward-Euler
    /// LU cache; returns the substep count and length for `dt`.
    fn ensure_lu(&mut self, dt: f64) -> Result<(usize, f64), ThermalError> {
        let n_sub = (dt / self.max_substep).ceil().max(1.0) as usize;
        let h = dt / n_sub as f64;
        let needs_factor = match &self.cached {
            Some((cached_h, _)) => (cached_h - h).abs() > 1e-15,
            None => true,
        };
        if needs_factor {
            let n = self.model.a.rows();
            let mut m = self.model.a.clone();
            for i in 0..n {
                m[(i, i)] += self.model.cap[i] / h;
            }
            self.cached = Some((h, m.lu()?));
        }
        Ok((n_sub, h))
    }

    /// Batched-stepping handle for [`crate::batch`]: see
    /// `TransientSolver::batch_prop` — identical semantics, including
    /// latching the permanent fallback on a failed rebuild.
    pub(crate) fn batch_prop(&mut self, dt: f64) -> Option<&std::sync::Arc<Propagator>> {
        if self.backend != SolverBackend::Propagator || self.prop_fallback {
            return None;
        }
        self.ensure_propagator(dt);
        if self.prop_fallback {
            return None;
        }
        self.prop.as_ref()
    }

    /// Validates a power vector exactly as `step` would before the
    /// propagator advance.
    pub(crate) fn batch_check_power(&self, block_power: &[f64]) -> Result<(), ThermalError> {
        self.model.check_power(block_power)
    }

    /// Mutable cell/node temperatures, for the batched gather/scatter.
    pub(crate) fn temps_mut(&mut self) -> &mut [f64] {
        &mut self.temps
    }

    /// Advances by `dt` seconds at constant per-block power.
    ///
    /// # Errors
    ///
    /// Fails on bad inputs or a singular system.
    pub fn step(&mut self, block_power: &[f64], dt: f64) -> Result<(), ThermalError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ThermalError::NotPhysical(format!("dt = {dt}")));
        }
        if self.backend == SolverBackend::Propagator && !self.prop_fallback {
            self.model.check_power(block_power)?;
            self.ensure_propagator(dt);
            if !self.prop_fallback {
                let p = self.prop.as_ref().expect("propagator built above");
                p.advance(
                    &mut self.temps,
                    block_power,
                    &mut self.xbuf,
                    &mut self.sol_buf,
                );
                return Ok(());
            }
        }
        let p = self.model.rhs(block_power)?;
        let (n_sub, h) = self.ensure_lu(dt)?;
        let (_, lu) = self.cached.as_ref().expect("factor cached above");
        for _ in 0..n_sub {
            let rhs: Vec<f64> = self
                .temps
                .iter()
                .zip(&self.model.cap)
                .zip(&p)
                .map(|((t, c), pi)| pi + c / h * t)
                .collect();
            self.temps = lu.solve(&rhs);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThermalModel;
    use dtm_floorplan::UnitKind;

    fn setup() -> (Floorplan, PackageConfig) {
        (Floorplan::ppc_cmp(1), PackageConfig::default())
    }

    #[test]
    fn zero_power_gives_ambient() {
        let (fp, pkg) = setup();
        let grid = GridThermalModel::new(&fp, &pkg, GridConfig::default()).unwrap();
        let t = grid.steady_state(&vec![0.0; fp.len()]).unwrap();
        for &c in t.cells() {
            assert!((c - pkg.ambient).abs() < 1e-6);
        }
    }

    #[test]
    fn block_power_weights_sum_to_one() {
        let (fp, pkg) = setup();
        let grid = GridThermalModel::new(&fp, &pkg, GridConfig { cols: 10, rows: 15 }).unwrap();
        for (b, w) in grid.weights.iter().enumerate() {
            let sum: f64 = w.iter().map(|&(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9, "block {b}: weights sum {sum}");
        }
    }

    #[test]
    fn grid_block_means_track_block_model() {
        let (fp, pkg) = setup();
        let grid = GridThermalModel::new(&fp, &pkg, GridConfig { cols: 20, rows: 30 }).unwrap();
        let block = ThermalModel::new(&fp, &pkg).unwrap();
        let power: Vec<f64> = (0..fp.len()).map(|i| 0.3 + 0.15 * (i % 5) as f64).collect();
        let gt = grid.steady_state(&power).unwrap();
        let bt = block.steady_state(&power).unwrap();
        for b in 0..fp.len() {
            let diff = (gt.block_mean(b) - bt[b]).abs();
            assert!(
                diff < 3.0,
                "block {} ({}): grid {:.1} vs block {:.1}",
                b,
                fp.blocks()[b].name(),
                gt.block_mean(b),
                bt[b]
            );
        }
    }

    #[test]
    fn hot_register_file_shows_within_block_gradient() {
        let (fp, pkg) = setup();
        let grid = GridThermalModel::new(&fp, &pkg, GridConfig { cols: 24, rows: 36 }).unwrap();
        let rf = fp.block_of(0, UnitKind::IntRegFile).unwrap();
        let mut power = vec![0.2; fp.len()];
        power[rf] = 4.0;
        let t = grid.steady_state(&power).unwrap();
        // The block's peak exceeds its mean: the gradient the block
        // model's fast local mode approximates.
        let excess = t.block_excess(rf);
        assert!(excess > 0.05, "no within-block gradient: {excess}");
        // And the hot block is hotter than its neighbours' means.
        let fxu = fp.block_of(0, UnitKind::Fxu).unwrap();
        assert!(t.block_mean(rf) > t.block_mean(fxu));
    }

    #[test]
    fn grid_resolution_refines_monotonically() {
        let (fp, pkg) = setup();
        let rf = fp.block_of(0, UnitKind::IntRegFile).unwrap();
        let mut power = vec![0.2; fp.len()];
        power[rf] = 4.0;
        let coarse = GridThermalModel::new(&fp, &pkg, GridConfig { cols: 8, rows: 12 }).unwrap();
        let fine = GridThermalModel::new(&fp, &pkg, GridConfig { cols: 24, rows: 36 }).unwrap();
        let tc = coarse.steady_state(&power).unwrap().block_max(rf);
        let tf = fine.steady_state(&power).unwrap().block_max(rf);
        // Finer grids resolve sharper (hotter) peaks.
        assert!(tf >= tc - 0.2, "fine {tf} vs coarse {tc}");
    }

    #[test]
    fn grid_transient_converges_to_steady_state() {
        let (fp, pkg) = setup();
        let model = GridThermalModel::new(&fp, &pkg, GridConfig { cols: 8, rows: 12 }).unwrap();
        let power = vec![0.4; fp.len()];
        let expect = model.steady_state(&power).unwrap().temps.clone();
        let mut sim = GridTransient::new(model, 50e-6);
        sim.init_steady(&power).unwrap();
        for _ in 0..50 {
            sim.step(&power, 1e-3).unwrap();
        }
        for (t, e) in sim.temps().temps.iter().zip(&expect) {
            assert!((t - e).abs() < 0.05, "t={t} e={e}");
        }
    }

    #[test]
    fn grid_transient_heats_under_power_step() {
        let (fp, pkg) = setup();
        let rf = fp.block_of(0, UnitKind::IntRegFile).unwrap();
        let model = GridThermalModel::new(&fp, &pkg, GridConfig { cols: 8, rows: 12 }).unwrap();
        let mut sim = GridTransient::new(model, 50e-6);
        let mut power = vec![0.2; fp.len()];
        sim.init_steady(&power).unwrap();
        let before = sim.temps().block_max(rf);
        power[rf] = 4.0;
        for _ in 0..40 {
            sim.step(&power, 1e-3).unwrap();
        }
        let after = sim.temps().block_max(rf);
        assert!(after > before + 1.0, "before {before} after {after}");
    }

    #[test]
    fn grid_propagator_cache_invalidates_on_dt_change() {
        let (fp, pkg) = setup();
        let model = GridThermalModel::new(&fp, &pkg, GridConfig { cols: 6, rows: 8 }).unwrap();
        let p = vec![0.5; fp.len()];
        let (dt1, dt2) = (27.78e-6, 83.34e-6);

        let mut a = GridTransient::new(model.clone(), 7e-6);
        a.init_steady(&vec![0.2; fp.len()]).unwrap();
        for _ in 0..3 {
            a.step(&p, dt1).unwrap();
        }
        assert!((a.prop.as_ref().unwrap().dt() - dt1).abs() < 1e-18);
        // A fresh solver resumed from A's mid-run state, never having
        // seen dt1, must match bitwise once both step at dt2.
        let mut b = GridTransient::new(model, 7e-6);
        b.temps = a.temps.clone();
        for _ in 0..3 {
            a.step(&p, dt2).unwrap();
            b.step(&p, dt2).unwrap();
        }
        assert!((a.prop.as_ref().unwrap().dt() - dt2).abs() < 1e-18);
        assert_eq!(a.temps, b.temps);
    }

    #[test]
    fn grid_backends_agree_on_a_transient() {
        let (fp, pkg) = setup();
        let model = GridThermalModel::new(&fp, &pkg, GridConfig { cols: 6, rows: 8 }).unwrap();
        let p = vec![0.6; fp.len()];
        let mut exact = GridTransient::new(model.clone(), 7e-6);
        let mut euler = GridTransient::new(model, 7e-6).with_backend(SolverBackend::BackwardEuler);
        exact.init_steady(&vec![0.2; fp.len()]).unwrap();
        euler.init_steady(&vec![0.2; fp.len()]).unwrap();
        for _ in 0..20 {
            exact.step(&p, 27.78e-6).unwrap();
            euler.step(&p, 27.78e-6).unwrap();
        }
        assert!(!exact.in_fallback());
        assert!(exact.cached.is_none(), "propagator path must not factor LU");
        for (x, y) in exact.temps.iter().zip(&euler.temps) {
            assert!((x - y).abs() < 0.05, "exact {x} vs euler {y}");
        }
    }

    #[test]
    fn grid_transient_rejects_bad_dt() {
        let (fp, pkg) = setup();
        let model = GridThermalModel::new(&fp, &pkg, GridConfig { cols: 4, rows: 4 }).unwrap();
        let mut sim = GridTransient::new(model, 50e-6);
        assert!(sim.step(&vec![0.0; fp.len()], -1.0).is_err());
    }

    #[test]
    fn rejects_degenerate_grids() {
        let (fp, pkg) = setup();
        assert!(GridThermalModel::new(&fp, &pkg, GridConfig { cols: 1, rows: 5 }).is_err());
    }

    #[test]
    fn rejects_bad_power() {
        let (fp, pkg) = setup();
        let grid = GridThermalModel::new(&fp, &pkg, GridConfig::default()).unwrap();
        assert!(grid.steady_state(&[0.1]).is_err());
        let mut p = vec![0.0; fp.len()];
        p[0] = f64::NAN;
        assert!(grid.steady_state(&p).is_err());
    }
}
