//! Minimal dense linear algebra for the thermal solver.
//!
//! Thermal RC networks in this study are small (tens of nodes), so a dense
//! LU factorization with partial pivoting is simpler and faster than
//! pulling in a sparse solver. The factorization is cached by the
//! transient solver, which re-solves with a new right-hand side every
//! substep.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced when a linear system cannot be solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinalgError {
    /// The matrix is singular (a pivot underflowed).
    Singular,
    /// Dimensions of operands do not agree.
    DimensionMismatch,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::DimensionMismatch => write!(f, "operand dimensions do not agree"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major square-or-rectangular matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[i] = acc;
        }
        y
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if a pivot underflows, and
    /// [`LinalgError::DimensionMismatch`] if the matrix is not square.
    pub fn lu(&self) -> Result<LuFactors, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Find pivot.
            let mut p = k;
            let mut max = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                for j in (k + 1)..n {
                    lu[i * n + j] -= factor * lu[k * n + j];
                }
            }
        }
        Ok(LuFactors { n, lu, piv })
    }

    /// Solves `self * x = b` via a fresh LU factorization.
    ///
    /// # Errors
    ///
    /// See [`Matrix::lu`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        Ok(self.lu()?.solve(b))
    }

    /// Maximum absolute asymmetry `max |a_ij - a_ji|`.
    pub fn asymmetry(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols.min(self.rows) {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Cached LU factorization with partial pivoting, reusable across many
/// right-hand sides.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    piv: Vec<usize>,
}

impl LuFactors {
    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` using the cached factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.n()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc / self.lu[i * n + i];
        }
        x
    }

    /// Solves in place into `x`, avoiding allocation.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` differ from `self.n()`.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n);
        x.clear();
        x.extend(self.piv.iter().map(|&p| b[p]));
        let n = self.n;
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc / self.lu[i * n + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, bb)| (ax - bb).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solve_identity() {
        let a = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_small_system() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let b = vec![5.0, 10.0];
        let x = a.solve(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn non_square_lu_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::DimensionMismatch)));
    }

    #[test]
    fn lu_factors_reusable_across_rhs() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.0, 1.0, 5.0, 2.0, 0.0, 2.0, 6.0]);
        let lu = a.lu().unwrap();
        for b in [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [3.0, -2.0, 8.0]] {
            let x = lu.solve(&b);
            assert!(residual(&a, &x, &b) < 1e-10);
        }
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 5.0, 2.0, 0.5, 2.0, 6.0]);
        let lu = a.lu().unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x1 = lu.solve(&b);
        let mut x2 = Vec::new();
        lu.solve_into(&b, &mut x2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn larger_diagonally_dominant_system() {
        // Build a 20×20 diagonally dominant (thermal-like) system and
        // verify the residual.
        let n = 20;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    a[(i, j)] = 10.0 + i as f64;
                } else {
                    a[(i, j)] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
                }
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 5.0).collect();
        let x = a.solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn mul_vec_basic() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn asymmetry_of_symmetric_matrix_is_zero() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(a.asymmetry(), 0.0);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.5, 3.0]);
        assert!((b.asymmetry() - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "row-major data length mismatch")]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }
}
