//! Minimal dense linear algebra for the thermal solver.
//!
//! Thermal RC networks in this study are small (tens of nodes), so a dense
//! LU factorization with partial pivoting is simpler and faster than
//! pulling in a sparse solver. The factorization is cached by the
//! transient solver for the backward-Euler path; the default transient
//! path instead precomputes a matrix exponential ([`Matrix::expm`]) and
//! advances with the flat row-major kernel [`affine_matvec`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Flat row-major affine matrix–vector kernel:
/// `y[i] = bias[i] + Σ_j a[i·cols + j] · x[j]`.
///
/// This is the single hot kernel shared by the block- and grid-model
/// propagators: one contiguous streaming pass over `a` with an
/// independent dot product per row (no cross-iteration dependency, so
/// the compiler can vectorize it), unlike the serial triangular solves
/// of the LU path. Accumulation order within a row is fixed (four
/// strided partial sums), so results are bit-reproducible run to run.
///
/// # Panics
///
/// Panics if `a.len() != y.len() * cols`, `x.len() != cols`, or
/// `bias.len() != y.len()`.
pub fn affine_matvec(cols: usize, a: &[f64], bias: &[f64], x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), cols, "input length mismatch");
    assert_eq!(a.len(), y.len() * cols, "matrix shape mismatch");
    assert_eq!(bias.len(), y.len(), "bias length mismatch");
    for (i, out) in y.iter_mut().enumerate() {
        let row = &a[i * cols..(i + 1) * cols];
        *out = bias[i] + folded_dot(cols, row, x);
    }
}

/// The fixed-order dot product both propagator kernels share: four
/// strided accumulators break the single-chain dependency and map onto
/// SIMD lanes; the tail is folded in afterwards. Accumulation order is
/// part of the contract — [`affine_matvec`] and [`matmul_strided`] are
/// bit-identical per output element *because* they both reduce through
/// this exact sequence.
#[inline(always)]
fn folded_dot(cols: usize, row: &[f64], x: &[f64]) -> f64 {
    let chunks = cols / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for k in 0..chunks {
        let r = &row[4 * k..4 * k + 4];
        let v = &x[4 * k..4 * k + 4];
        s0 += r[0] * v[0];
        s1 += r[1] * v[1];
        s2 += r[2] * v[2];
        s3 += r[3] * v[3];
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    for j in 4 * chunks..cols {
        acc += row[j] * x[j];
    }
    acc
}

/// How many lanes a [`matmul_strided`] block keeps resident at once;
/// also the recommended padding granularity for lane-state buffers.
pub const LANE_BLOCK: usize = 8;

/// Cache-blocked affine matrix–matrix kernel over a column-major lane
/// block: for each lane `l < lanes`,
/// `y[l·ldy + i] = bias[i] + Σ_j a[i·cols + j] · x[l·ldx + j]`.
///
/// `x` holds one input column per lane (leading dimension `ldx ≥ cols`,
/// so lane `l`'s column is the contiguous `x[l·ldx .. l·ldx + cols]`);
/// `y` likewise with leading dimension `ldy ≥ rows`. Columns past
/// `lanes` — the padded tail of a structure-of-arrays buffer rounded up
/// to [`LANE_BLOCK`] — are never read or written.
///
/// Internally each block of [`LANE_BLOCK`] lanes is repacked
/// lane-interleaved (element `j` of all lanes adjacent) one
/// `K_TILE`-column tile at a time, so the matrix streams once per block
/// instead of once per lane, the packed tile stays L1-resident across
/// every row, and the four partial sums become [`LANE_BLOCK`]-wide
/// independent accumulator chains the compiler vectorizes *across
/// lanes*. The blocking reorders only *which* `(row, lane)` element is
/// produced when: per lane, every multiply still lands on the same
/// accumulator in the same (column-order) sequence as
/// [`affine_matvec`]'s — tiles advance monotonically in `k`, with the
/// per-row accumulators carried across tiles — followed by the same
/// fold and tail, so every lane's output column is bit-identical to a
/// scalar `affine_matvec` over the same data.
///
/// # Panics
///
/// Panics if `a.len() != rows * cols`, `bias.len() != rows`,
/// `ldx < cols`, `ldy < rows`, or either lane buffer is too short for
/// `lanes` columns.
#[allow(clippy::too_many_arguments)]
pub fn matmul_strided(
    rows: usize,
    cols: usize,
    a: &[f64],
    bias: &[f64],
    x: &[f64],
    ldx: usize,
    y: &mut [f64],
    ldy: usize,
    lanes: usize,
) {
    assert_eq!(a.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(bias.len(), rows, "bias length mismatch");
    assert!(ldx >= cols, "input leading dimension too small");
    assert!(ldy >= rows, "output leading dimension too small");
    if lanes == 0 {
        return;
    }
    assert!(x.len() >= (lanes - 1) * ldx + cols, "input block too short");
    assert!(
        y.len() >= (lanes - 1) * ldy + rows,
        "output block too short"
    );
    // Columns per packed tile (multiple of 4): 512 × LANE_BLOCK doubles
    // = 32 KiB, one typical L1 — every propagator in the study fits a
    // single tile, keeping the accumulators on the stack.
    const K_TILE: usize = 512;
    let chunks = cols / 4;
    let whole = 4 * chunks;
    // Lane-interleaved scratch for one tile: xt[(k - k0)·LANE_BLOCK + j]
    // is column k of block-lane j (zero for lanes past the ragged end —
    // read but never written back).
    let mut xt = vec![0.0f64; K_TILE.min(whole) * LANE_BLOCK];
    let pack = |xt: &mut [f64], x: &[f64], l0: usize, lb: usize, k0: usize, k1: usize| {
        if lb < LANE_BLOCK {
            xt.iter_mut().for_each(|v| *v = 0.0);
        }
        for j in 0..lb {
            let col = &x[(l0 + j) * ldx + k0..(l0 + j) * ldx + k1];
            for (k, &v) in col.iter().enumerate() {
                xt[k * LANE_BLOCK + j] = v;
            }
        }
    };

    if whole <= K_TILE {
        // Single-tile fast path: the accumulators live on the stack for
        // the whole reduction.
        for l0 in (0..lanes).step_by(LANE_BLOCK) {
            let lb = (l0 + LANE_BLOCK).min(lanes) - l0;
            pack(&mut xt, x, l0, lb, 0, whole);
            for i in 0..rows {
                let row = &a[i * cols..(i + 1) * cols];
                let mut s = [[0.0f64; LANE_BLOCK]; 4];
                tile_accumulate(&row[..whole], &xt, &mut s);
                for j in 0..lb {
                    let mut v = (s[0][j] + s[1][j]) + (s[2][j] + s[3][j]);
                    for t in whole..cols {
                        v += row[t] * x[(l0 + j) * ldx + t];
                    }
                    y[(l0 + j) * ldy + i] = bias[i] + v;
                }
            }
        }
        return;
    }

    // Tiled path for matrices wider than one tile: the four partial
    // sums per (row, block-lane) are carried across tiles in `acc`
    // (spilled/reloaded at tile boundaries only), so each lane's
    // accumulator still sees its multiplies in plain column order.
    let mut acc = vec![[[0.0f64; LANE_BLOCK]; 4]; rows];
    for l0 in (0..lanes).step_by(LANE_BLOCK) {
        let lb = (l0 + LANE_BLOCK).min(lanes) - l0;
        acc.iter_mut().for_each(|v| *v = [[0.0; LANE_BLOCK]; 4]);
        let mut k0 = 0;
        while k0 < whole {
            let k1 = (k0 + K_TILE).min(whole);
            pack(&mut xt, x, l0, lb, k0, k1);
            for i in 0..rows {
                let row = &a[i * cols + k0..i * cols + k1];
                let mut s = acc[i];
                tile_accumulate(row, &xt[..(k1 - k0) * LANE_BLOCK], &mut s);
                acc[i] = s;
            }
            k0 = k1;
        }
        // Fold, tail (read straight from the strided columns), bias.
        for i in 0..rows {
            let row = &a[i * cols..(i + 1) * cols];
            let s = &acc[i];
            for j in 0..lb {
                let mut v = (s[0][j] + s[1][j]) + (s[2][j] + s[3][j]);
                for t in whole..cols {
                    v += row[t] * x[(l0 + j) * ldx + t];
                }
                y[(l0 + j) * ldy + i] = bias[i] + v;
            }
        }
    }
}

/// The shared inner reduction of [`matmul_strided`]: fold one tile of
/// `row` (length a multiple of 4) against the lane-interleaved packed
/// tile `xt` into the four [`LANE_BLOCK`]-wide partial sums. The
/// `chunks_exact` + fixed-size-array shape is what lets the compiler
/// drop every bounds check and keep the 8 accumulator vectors in
/// registers.
#[inline(always)]
fn tile_accumulate(row: &[f64], xt: &[f64], s: &mut [[f64; LANE_BLOCK]; 4]) {
    for (r, xk) in row.chunks_exact(4).zip(xt.chunks_exact(4 * LANE_BLOCK)) {
        let r: &[f64; 4] = r.try_into().unwrap();
        let xk: &[f64; 4 * LANE_BLOCK] = xk.try_into().unwrap();
        for j in 0..LANE_BLOCK {
            s[0][j] += r[0] * xk[j];
            s[1][j] += r[1] * xk[LANE_BLOCK + j];
            s[2][j] += r[2] * xk[2 * LANE_BLOCK + j];
            s[3][j] += r[3] * xk[3 * LANE_BLOCK + j];
        }
    }
}

/// Error produced when a linear system cannot be solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinalgError {
    /// The matrix is singular (a pivot underflowed).
    Singular,
    /// Dimensions of operands do not agree.
    DimensionMismatch,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::DimensionMismatch => write!(f, "operand dimensions do not agree"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major square-or-rectangular matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[i] = acc;
        }
        y
    }

    /// The row-major backing storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j order keeps the inner loop contiguous over both the
        // output row and the rhs row.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, r) in out_row.iter_mut().zip(rhs_row) {
                    *o += aik * r;
                }
            }
        }
        out
    }

    /// Infinity norm: the maximum absolute row sum.
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Matrix exponential `exp(self)` by scaling-and-squaring with a
    /// diagonal Padé(6,6) approximant (Golub & Van Loan, Algorithm
    /// 11.3-1). The matrix is scaled by `2⁻ʲ` until its infinity norm
    /// is at most ½, the Padé approximant is evaluated there, and the
    /// result is squared `j` times.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for non-square input
    /// and [`LinalgError::Singular`] if the Padé denominator cannot be
    /// inverted or the input contains non-finite entries.
    pub fn expm(&self) -> Result<Matrix, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.rows;
        let norm = self.inf_norm();
        if !norm.is_finite() {
            return Err(LinalgError::Singular);
        }
        // Scale so the Padé expansion point has norm ≤ 1/2.
        let j = if norm > 0.5 {
            (norm / 0.5).log2().ceil() as u32
        } else {
            0
        };
        let mut a = self.clone();
        let scale = (0.5f64).powi(j as i32);
        for v in &mut a.data {
            *v *= scale;
        }

        const Q: u32 = 6;
        let mut num = Matrix::identity(n); // Σ c_k A^k
        let mut den = Matrix::identity(n); // Σ c_k (−A)^k
        let mut power = Matrix::identity(n); // A^k
        let mut c = 1.0;
        for k in 1..=Q {
            c *= (Q - k + 1) as f64 / (k * (2 * Q - k + 1)) as f64;
            power = a.matmul(&power);
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            for ((nv, dv), pv) in num.data.iter_mut().zip(&mut den.data).zip(&power.data) {
                *nv += c * pv;
                *dv += sign * c * pv;
            }
        }
        let mut f = den.lu()?.solve_matrix(&num);
        for _ in 0..j {
            f = f.matmul(&f);
        }
        if f.data.iter().any(|v| !v.is_finite()) {
            return Err(LinalgError::Singular);
        }
        Ok(f)
    }

    /// The matrix inverse via LU factorization.
    ///
    /// # Errors
    ///
    /// See [`Matrix::lu`].
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        Ok(self.lu()?.solve_matrix(&Matrix::identity(self.rows)))
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if a pivot underflows, and
    /// [`LinalgError::DimensionMismatch`] if the matrix is not square.
    pub fn lu(&self) -> Result<LuFactors, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Find pivot.
            let mut p = k;
            let mut max = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                for j in (k + 1)..n {
                    lu[i * n + j] -= factor * lu[k * n + j];
                }
            }
        }
        Ok(LuFactors { n, lu, piv })
    }

    /// Solves `self * x = b` via a fresh LU factorization.
    ///
    /// # Errors
    ///
    /// See [`Matrix::lu`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        Ok(self.lu()?.solve(b))
    }

    /// Maximum absolute asymmetry `max |a_ij - a_ji|`.
    pub fn asymmetry(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols.min(self.rows) {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Cached LU factorization with partial pivoting, reusable across many
/// right-hand sides.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    piv: Vec<usize>,
}

impl LuFactors {
    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` using the cached factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.n()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc / self.lu[i * n + i];
        }
        x
    }

    /// Solves `A·X = B` column by column using the cached factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.n()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows, self.n, "rhs row count mismatch");
        let mut x = Matrix::zeros(b.rows, b.cols);
        let mut col = vec![0.0; self.n];
        let mut sol = Vec::with_capacity(self.n);
        for j in 0..b.cols {
            for i in 0..b.rows {
                col[i] = b[(i, j)];
            }
            self.solve_into(&col, &mut sol);
            for i in 0..b.rows {
                x[(i, j)] = sol[i];
            }
        }
        x
    }

    /// Solves in place into `x`, avoiding allocation.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` differ from `self.n()`.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n);
        x.clear();
        x.extend(self.piv.iter().map(|&p| b[p]));
        let n = self.n;
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc / self.lu[i * n + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill for kernel tests (splitmix-ish).
    fn fill(seed: u64, len: usize) -> Vec<f64> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn matmul_strided_matches_affine_matvec_bitwise() {
        // Odd cols exercise the scalar tail; padded leading dimensions
        // exercise the non-contiguous strides.
        let (rows, cols) = (13, 29);
        let (ldx, ldy) = (cols + 3, rows + 5);
        let lanes = 7;
        let a = fill(1, rows * cols);
        let bias = fill(2, rows);
        let x = fill(3, lanes * ldx);
        let mut y = vec![0.0; lanes * ldy];
        matmul_strided(rows, cols, &a, &bias, &x, ldx, &mut y, ldy, lanes);
        for l in 0..lanes {
            let mut yref = vec![0.0; rows];
            affine_matvec(cols, &a, &bias, &x[l * ldx..l * ldx + cols], &mut yref);
            for i in 0..rows {
                assert_eq!(
                    y[l * ldy + i].to_bits(),
                    yref[i].to_bits(),
                    "lane {l} row {i} diverged from the scalar kernel"
                );
            }
        }
    }

    #[test]
    fn matmul_strided_leaves_padding_untouched() {
        let (rows, cols) = (5, 6);
        let (ldx, ldy) = (cols + 2, rows + 3);
        let capacity = LANE_BLOCK; // padded SoA buffer
        let lanes = 3; // ragged: active lanes < capacity
        let a = fill(4, rows * cols);
        let bias = fill(5, rows);
        let x = fill(6, capacity * ldx);
        let sentinel = -1234.5;
        let mut y = vec![sentinel; capacity * ldy];
        matmul_strided(rows, cols, &a, &bias, &x, ldx, &mut y, ldy, lanes);
        for l in 0..capacity {
            for i in 0..ldy {
                let v = y[l * ldy + i];
                if l < lanes && i < rows {
                    assert_ne!(v, sentinel, "active element ({l},{i}) unwritten");
                } else {
                    assert_eq!(v, sentinel, "padding element ({l},{i}) clobbered");
                }
            }
        }
    }

    #[test]
    fn matmul_strided_agrees_with_matrix_matmul() {
        // Same product through the naive Matrix::matmul (row-major,
        // plain accumulation): values agree to rounding even though the
        // accumulation orders differ.
        let (rows, cols, lanes) = (9, 17, 5);
        let a_data = fill(7, rows * cols);
        let x_data = fill(8, lanes * cols);
        let a = Matrix::from_vec(rows, cols, a_data.clone());
        // Column l of the lane block as column l of a cols×lanes matrix.
        let mut xm = Matrix::zeros(cols, lanes);
        for l in 0..lanes {
            for j in 0..cols {
                xm[(j, l)] = x_data[l * cols + j];
            }
        }
        let prod = a.matmul(&xm);
        let bias = vec![0.0; rows];
        let mut y = vec![0.0; lanes * rows];
        matmul_strided(
            rows, cols, &a_data, &bias, &x_data, cols, &mut y, rows, lanes,
        );
        for l in 0..lanes {
            for i in 0..rows {
                assert!(
                    (y[l * rows + i] - prod[(i, l)]).abs() < 1e-12,
                    "({i},{l}): {} vs {}",
                    y[l * rows + i],
                    prod[(i, l)]
                );
            }
        }
    }

    #[test]
    fn matmul_strided_zero_lanes_is_a_noop() {
        let a = fill(9, 4 * 4);
        let bias = fill(10, 4);
        let mut y = vec![7.0; 8];
        matmul_strided(4, 4, &a, &bias, &[], 4, &mut y, 4, 0);
        assert!(y.iter().all(|&v| v == 7.0));
    }

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, bb)| (ax - bb).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solve_identity() {
        let a = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_small_system() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let b = vec![5.0, 10.0];
        let x = a.solve(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn non_square_lu_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::DimensionMismatch)));
    }

    #[test]
    fn lu_factors_reusable_across_rhs() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.0, 1.0, 5.0, 2.0, 0.0, 2.0, 6.0]);
        let lu = a.lu().unwrap();
        for b in [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [3.0, -2.0, 8.0]] {
            let x = lu.solve(&b);
            assert!(residual(&a, &x, &b) < 1e-10);
        }
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 5.0, 2.0, 0.5, 2.0, 6.0]);
        let lu = a.lu().unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x1 = lu.solve(&b);
        let mut x2 = Vec::new();
        lu.solve_into(&b, &mut x2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn larger_diagonally_dominant_system() {
        // Build a 20×20 diagonally dominant (thermal-like) system and
        // verify the residual.
        let n = 20;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    a[(i, j)] = 10.0 + i as f64;
                } else {
                    a[(i, j)] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
                }
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 5.0).collect();
        let x = a.solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn mul_vec_basic() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn asymmetry_of_symmetric_matrix_is_zero() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(a.asymmetry(), 0.0);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.5, 3.0]);
        assert!((b.asymmetry() - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "row-major data length mismatch")]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_against_hand_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_vec(2, 2, vec![1.5, -2.0, 0.25, 3.0]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn inf_norm_is_max_row_sum() {
        let a = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, 0.5]);
        assert_eq!(a.inf_norm(), 3.5);
    }

    #[test]
    fn affine_matvec_matches_mul_vec_plus_bias() {
        let n = 11; // odd size exercises the unroll tail
        let a = Matrix::from_vec(
            n,
            n,
            (0..n * n).map(|k| ((k * 7919) % 13) as f64 - 6.0).collect(),
        );
        let x: Vec<f64> = (0..n).map(|k| 0.1 * k as f64 - 0.4).collect();
        let bias: Vec<f64> = (0..n).map(|k| k as f64).collect();
        let mut y = vec![0.0; n];
        affine_matvec(n, a.as_slice(), &bias, &x, &mut y);
        let expect = a.mul_vec(&x);
        for i in 0..n {
            assert!((y[i] - (expect[i] + bias[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_matrix_inverts_column_by_column() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 5.0, 2.0, 0.5, 2.0, 6.0]);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let e = Matrix::zeros(3, 3).expm().unwrap();
        assert_eq!(e, Matrix::identity(3));
    }

    #[test]
    fn expm_of_diagonal_exponentiates_entries() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = -2.0;
        a[(1, 1)] = 0.5;
        a[(2, 2)] = -7.0; // norm > 1/2 exercises scaling-and-squaring
        let e = a.expm().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { a[(i, i)].exp() } else { 0.0 };
                assert!(
                    (e[(i, j)] - expect).abs() < 1e-12,
                    "({i},{j}): {} vs {expect}",
                    e[(i, j)]
                );
            }
        }
    }

    #[test]
    fn expm_matches_series_on_nilpotent_matrix() {
        // Strictly upper-triangular: exp(A) = I + A + A²/2 exactly.
        let a = Matrix::from_vec(3, 3, vec![0.0, 2.0, 1.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0]);
        let e = a.expm().unwrap();
        let mut expect = Matrix::identity(3);
        let a2 = a.matmul(&a);
        for (idx, v) in expect.data.iter_mut().enumerate() {
            *v += a.data[idx] + 0.5 * a2.data[idx];
        }
        for (x, y) in e.data.iter().zip(&expect.data) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn expm_semigroup_property_holds() {
        // exp(A)·exp(A) = exp(2A) for the 2×2 stiff test matrix.
        let a = Matrix::from_vec(2, 2, vec![-3.0, 1.0, 0.5, -8.0]);
        let e1 = a.expm().unwrap();
        let mut a2 = a.clone();
        for v in &mut a2.data {
            *v *= 2.0;
        }
        let e2 = a2.expm().unwrap();
        let prod = e1.matmul(&e1);
        for (x, y) in prod.data.iter().zip(&e2.data) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn expm_rejects_non_square_and_non_finite() {
        assert!(matches!(
            Matrix::zeros(2, 3).expm(),
            Err(LinalgError::DimensionMismatch)
        ));
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(a.expm(), Err(LinalgError::Singular)));
    }
}
