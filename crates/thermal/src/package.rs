//! Thermal package description: material properties and cooling-solution
//! geometry used to build the RC network.

use serde::{Deserialize, Serialize};

/// Physical parameters of the die and its cooling package.
///
/// Defaults correspond to a conventional desktop package in the HotSpot
/// tradition: 0.5 mm silicon die, thin thermal-interface material, a 3 cm
/// copper heat spreader, a 6 cm finned heat sink, and a lumped convection
/// resistance to the 45 °C ambient inside the case.
///
/// # Examples
///
/// ```
/// let pkg = dtm_thermal::PackageConfig::default();
/// assert!(pkg.r_convection > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackageConfig {
    /// Die thickness (m).
    pub t_silicon: f64,
    /// Silicon thermal conductivity (W/(m·K)); ~100 at hot-die temps.
    pub k_silicon: f64,
    /// Silicon volumetric heat capacity (J/(m³·K)). The default carries
    /// a 3× lumped-model correction (HotSpot-style fudge) so the
    /// single-node-per-block model reproduces the multi-node RC ladder's
    /// slower effective block time constants (calibrated against the
    /// study's stop-go duty cycles, which imply tens-of-ms hotspot
    /// heating times).
    pub c_silicon: f64,
    /// Thermal-interface-material thickness (m).
    pub t_interface: f64,
    /// Thermal-interface-material conductivity (W/(m·K)).
    pub k_interface: f64,
    /// Heat-spreader side length (m).
    pub spreader_side: f64,
    /// Heat-spreader thickness (m).
    pub spreader_thickness: f64,
    /// Heat-sink base side length (m).
    pub sink_side: f64,
    /// Heat-sink base thickness (m).
    pub sink_thickness: f64,
    /// Copper conductivity for spreader and sink (W/(m·K)).
    pub k_copper: f64,
    /// Copper volumetric heat capacity (J/(m³·K)).
    pub c_copper: f64,
    /// Total convection resistance, sink to ambient (K/W).
    pub r_convection: f64,
    /// Sub-block thermal-constriction coefficient (K·m²/W): the fast
    /// within-block gradient between the block's hottest point and its
    /// lumped node (the detail a HotSpot grid model resolves and a
    /// block model loses). The hotspot excess is
    /// `ΔT = local_constriction × power_density`.
    pub local_constriction: f64,
    /// Time constant of the sub-block mode (s); of order a millisecond.
    pub local_tau: f64,
    /// Ambient temperature inside the case (°C).
    pub ambient: f64,
}

impl Default for PackageConfig {
    fn default() -> Self {
        PackageConfig {
            t_silicon: 0.5e-3,
            k_silicon: 100.0,
            c_silicon: 7.0e6,
            t_interface: 50e-6,
            k_interface: 4.0,
            spreader_side: 30e-3,
            spreader_thickness: 1.0e-3,
            sink_side: 60e-3,
            sink_thickness: 6.9e-3,
            k_copper: 400.0,
            c_copper: 3.55e6,
            r_convection: 0.70,
            local_constriction: 1.0e-6,
            local_tau: 1.5e-3,
            ambient: 45.0,
        }
    }
}

impl PackageConfig {
    /// A deliberately weaker cooling solution (higher convection
    /// resistance), useful for stress-testing DTM policies.
    pub fn constrained() -> Self {
        PackageConfig {
            r_convection: 1.3,
            ..PackageConfig::default()
        }
    }

    /// Junction-to-ambient resistance of the vertical path for a uniform
    /// heat flux over `chip_area` (m²): a quick sanity-check estimate, not
    /// used by the solver itself.
    pub fn vertical_resistance_estimate(&self, chip_area: f64) -> f64 {
        let r_si = self.t_silicon / (self.k_silicon * chip_area);
        let r_tim = self.t_interface / (self.k_interface * chip_area);
        let r_sp = self.spreader_thickness / (self.k_copper * chip_area);
        let r_sink = self.sink_thickness / (self.k_copper * chip_area);
        r_si + r_tim + r_sp + r_sink + self.r_convection
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_package_is_physical() {
        let p = PackageConfig::default();
        assert!(p.t_silicon > 0.0 && p.t_silicon < 1e-2);
        assert!(p.k_silicon > 10.0);
        assert!(p.spreader_side > p.t_silicon);
        assert!(p.sink_side >= p.spreader_side);
        assert!(p.ambient > 0.0 && p.ambient < 84.2);
    }

    #[test]
    fn constrained_package_has_higher_resistance() {
        assert!(PackageConfig::constrained().r_convection > PackageConfig::default().r_convection);
    }

    #[test]
    fn vertical_resistance_dominated_by_convection() {
        let p = PackageConfig::default();
        let chip_area = 1.2e-4; // ~9×13.5 mm die
        let r = p.vertical_resistance_estimate(chip_area);
        assert!(r > p.r_convection);
        assert!(
            r < p.r_convection + 1.0,
            "conduction path unreasonably resistive: {r}"
        );
    }
}
