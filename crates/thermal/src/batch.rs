//! Multi-lane lockstep stepping: one batched propagator advance for a
//! group of independent solvers that share the same `E`/`F`.
//!
//! A sweep evaluates hundreds of simulations over one floorplan and one
//! `dt`; every one of them advances with the *same* shared
//! [`Propagator`](crate::propagator) (the process-wide cache hands all
//! of them the same `Arc`). Stepping them one at a time re-streams the
//! `n × (n + k)` propagator matrix from cache per run — the thermal
//! phase is memory-bound on exactly that stream. This module instead
//! gathers `L` lanes' `[T | p]` columns into a column-major
//! structure-of-arrays block (padded to [`LANE_BLOCK`]) and advances
//! all of them with one cache-blocked
//! [`matmul_strided`](crate::linalg::matmul_strided) call: the matrix
//! streams once per block of lanes instead of once per lane.
//!
//! **Bit-identity contract.** Each lane's output column reduces through
//! the exact accumulation order of the scalar kernel, every lane's
//! power vector is validated exactly as its own `step` would, and the
//! sub-block fast mode runs per lane after the scatter — so a batched
//! step leaves every solver in a state bit-identical to having called
//! its scalar `step` with the same inputs.
//!
//! **Fallback contract.** Batching is an execution strategy, not a
//! configuration: when the lanes do *not* all resolve to one shared
//! propagator (backward-Euler backend, latched fallback, or differing
//! thermal configurations), [`step_lumped_batch`]/[`step_grid_batch`]
//! return `Ok(false)` without touching any state, and the caller steps
//! each lane through its scalar path.

use crate::grid::GridTransient;
use crate::linalg::LANE_BLOCK;
use crate::model::{ThermalError, TransientSolver};
use crate::propagator::Propagator;
use std::sync::Arc;

/// Reusable gather/scatter buffers for lockstep stepping: the
/// column-major `(n + k) × L` input block and `n × L` output block,
/// both padded to a [`LANE_BLOCK`] multiple of lanes. One workspace per
/// batch driver, reused across every step.
#[derive(Debug, Default)]
pub struct BatchWorkspace {
    x: Vec<f64>,
    y: Vec<f64>,
}

impl BatchWorkspace {
    /// An empty workspace; buffers grow on first use and are reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The solver-side surface a lockstep lane needs: resolve the shared
/// propagator, validate power, expose state, and run any post-advance
/// update. Crate-internal so the lumped and grid solvers keep their
/// fields private.
trait LaneSolver {
    fn lane_prop(&mut self, dt: f64) -> Option<&Arc<Propagator>>;
    fn lane_check_power(&self, power: &[f64]) -> Result<(), ThermalError>;
    fn lane_temps_mut(&mut self) -> &mut [f64];
    fn lane_post_advance(&mut self, power: &[f64], dt: f64);
}

impl LaneSolver for TransientSolver {
    fn lane_prop(&mut self, dt: f64) -> Option<&Arc<Propagator>> {
        self.batch_prop(dt)
    }
    fn lane_check_power(&self, power: &[f64]) -> Result<(), ThermalError> {
        self.batch_check_power(power)
    }
    fn lane_temps_mut(&mut self) -> &mut [f64] {
        self.temps_mut()
    }
    fn lane_post_advance(&mut self, power: &[f64], dt: f64) {
        self.batch_fast_mode(power, dt);
    }
}

impl LaneSolver for GridTransient {
    fn lane_prop(&mut self, dt: f64) -> Option<&Arc<Propagator>> {
        self.batch_prop(dt)
    }
    fn lane_check_power(&self, power: &[f64]) -> Result<(), ThermalError> {
        self.batch_check_power(power)
    }
    fn lane_temps_mut(&mut self) -> &mut [f64] {
        self.temps_mut()
    }
    fn lane_post_advance(&mut self, _power: &[f64], _dt: f64) {
        // The grid solver has no sub-block fast mode.
    }
}

fn step_batch<S: LaneSolver>(
    lanes: &mut [(&mut S, &[f64])],
    dt: f64,
    ws: &mut BatchWorkspace,
) -> Result<bool, ThermalError> {
    // A single lane gains nothing over its scalar step; let the caller
    // take the ordinary path (also covers `--lanes 1` and empty groups).
    if lanes.len() < 2 {
        return Ok(false);
    }
    if !(dt.is_finite() && dt > 0.0) {
        return Err(ThermalError::NotPhysical(format!("dt = {dt}")));
    }
    // Validate every lane's power exactly as its scalar step would,
    // before any state is touched.
    for (solver, power) in lanes.iter() {
        solver.lane_check_power(power)?;
    }
    // All lanes must resolve to the *same* shared propagator instance
    // (`Arc` identity, courtesy of the process-wide cache). Anything
    // else — backward-Euler, latched fallback, a different thermal
    // configuration or dt — and the whole group falls back to scalar.
    let mut shared: Option<Arc<Propagator>> = None;
    for (solver, _) in lanes.iter_mut() {
        match solver.lane_prop(dt) {
            Some(p) => match &shared {
                Some(first) if Arc::ptr_eq(first, p) => {}
                Some(_) => return Ok(false),
                None => shared = Some(Arc::clone(p)),
            },
            None => return Ok(false),
        }
    }
    let prop = shared.expect("two or more lanes resolved above");
    let n = prop.n();
    let width = prop.width();
    let padded = lanes.len().div_ceil(LANE_BLOCK) * LANE_BLOCK;

    // Gather: column l is lane l's concatenated [T | p].
    ws.x.clear();
    ws.x.resize(padded * width, 0.0);
    ws.y.clear();
    ws.y.resize(padded * n, 0.0);
    for (l, (solver, power)) in lanes.iter_mut().enumerate() {
        let col = &mut ws.x[l * width..(l + 1) * width];
        col[..n].copy_from_slice(solver.lane_temps_mut());
        col[n..].copy_from_slice(power);
    }

    prop.advance_batch(&ws.x, width, &mut ws.y, n, lanes.len());

    // Scatter, then the per-lane post-advance (fast mode), in the same
    // advance-then-fast order as the scalar step.
    for (l, (solver, power)) in lanes.iter_mut().enumerate() {
        solver
            .lane_temps_mut()
            .copy_from_slice(&ws.y[l * n..(l + 1) * n]);
        solver.lane_post_advance(power, dt);
    }
    Ok(true)
}

/// Advances every lumped-model lane by `dt` in lockstep with one
/// batched propagator call. Each pair is a solver plus the constant
/// per-block power it sees over this step.
///
/// Returns `Ok(true)` when the batched kernel ran (every lane now
/// bit-identical to its scalar `step`), `Ok(false)` when the group was
/// not batchable and **no state was modified** — the caller must then
/// step each lane scalar.
///
/// # Errors
///
/// Propagates the per-lane power-vector validation failures a scalar
/// `step` would raise.
pub fn step_lumped_batch(
    lanes: &mut [(&mut TransientSolver, &[f64])],
    dt: f64,
    ws: &mut BatchWorkspace,
) -> Result<bool, ThermalError> {
    step_batch(lanes, dt, ws)
}

/// Advances every grid-model lane by `dt` in lockstep with one batched
/// propagator call. Semantics identical to [`step_lumped_batch`].
///
/// # Errors
///
/// Propagates the per-lane power-vector validation failures a scalar
/// `step` would raise.
pub fn step_grid_batch(
    lanes: &mut [(&mut GridTransient, &[f64])],
    dt: f64,
    ws: &mut BatchWorkspace,
) -> Result<bool, ThermalError> {
    step_batch(lanes, dt, ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        GridConfig, GridThermalModel, PackageConfig, SolverBackend, ThermalModel, TransientSolver,
    };
    use dtm_floorplan::Floorplan;

    const DT: f64 = 27.78e-6;

    fn lumped_solver() -> TransientSolver {
        let model = ThermalModel::new(&Floorplan::ppc_cmp(4), &PackageConfig::default()).unwrap();
        let mut s = TransientSolver::new(model, 7e-6);
        s.prewarm(DT).unwrap();
        s
    }

    fn lane_power(seed: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 0.1 + 0.07 * ((i + seed * 3) % 11) as f64)
            .collect()
    }

    #[test]
    fn lumped_batch_is_bit_identical_to_scalar_steps() {
        let n_lanes = 5; // ragged vs LANE_BLOCK
        let nb = lumped_solver().model().n_blocks();
        let powers: Vec<Vec<f64>> = (0..n_lanes).map(|l| lane_power(l, nb)).collect();
        let mut batched: Vec<TransientSolver> = (0..n_lanes).map(|_| lumped_solver()).collect();
        let mut scalar: Vec<TransientSolver> = batched.clone();

        let mut ws = BatchWorkspace::new();
        for _ in 0..50 {
            let mut lanes: Vec<(&mut TransientSolver, &[f64])> = batched
                .iter_mut()
                .zip(&powers)
                .map(|(s, p)| (s, p.as_slice()))
                .collect();
            assert!(step_lumped_batch(&mut lanes, DT, &mut ws).unwrap());
            for (s, p) in scalar.iter_mut().zip(&powers) {
                s.step(p, DT).unwrap();
            }
        }
        for (l, (b, s)) in batched.iter().zip(&scalar).enumerate() {
            assert_eq!(b.node_temps(), s.node_temps(), "lane {l} node temps");
            assert_eq!(b.fast_excess(), s.fast_excess(), "lane {l} fast mode");
        }
    }

    #[test]
    fn grid_batch_is_bit_identical_to_scalar_steps() {
        let fp = Floorplan::ppc_cmp(1);
        let pkg = PackageConfig::default();
        let cfg = GridConfig { cols: 8, rows: 12 };
        let build = || {
            let m = GridThermalModel::new(&fp, &pkg, cfg).unwrap();
            let mut s = GridTransient::new(m, 7e-6);
            s.prewarm(DT).unwrap();
            s
        };
        let n_lanes = 3;
        let nb = fp.len();
        let powers: Vec<Vec<f64>> = (0..n_lanes).map(|l| lane_power(l + 9, nb)).collect();
        let mut batched: Vec<GridTransient> = (0..n_lanes).map(|_| build()).collect();
        let mut scalar: Vec<GridTransient> = batched.clone();

        let mut ws = BatchWorkspace::new();
        for _ in 0..40 {
            let mut lanes: Vec<(&mut GridTransient, &[f64])> = batched
                .iter_mut()
                .zip(&powers)
                .map(|(s, p)| (s, p.as_slice()))
                .collect();
            assert!(step_grid_batch(&mut lanes, DT, &mut ws).unwrap());
            for (s, p) in scalar.iter_mut().zip(&powers) {
                s.step(p, DT).unwrap();
            }
        }
        for (l, (b, s)) in batched.iter().zip(&scalar).enumerate() {
            assert_eq!(b.temps().cells(), s.temps().cells(), "lane {l} cells");
        }
    }

    #[test]
    fn backward_euler_lane_defeats_batching_without_touching_state() {
        let mut a = lumped_solver();
        let mut b = lumped_solver().with_backend(SolverBackend::BackwardEuler);
        b.prewarm(DT).unwrap();
        let nb = a.model().n_blocks();
        let p = lane_power(1, nb);
        let before_a = a.node_temps().to_vec();
        let before_b = b.node_temps().to_vec();
        let mut ws = BatchWorkspace::new();
        let mut lanes: Vec<(&mut TransientSolver, &[f64])> =
            vec![(&mut a, p.as_slice()), (&mut b, p.as_slice())];
        assert!(!step_lumped_batch(&mut lanes, DT, &mut ws).unwrap());
        assert_eq!(a.node_temps(), &before_a[..], "no state change on refusal");
        assert_eq!(b.node_temps(), &before_b[..], "no state change on refusal");
    }

    #[test]
    fn single_lane_group_takes_the_scalar_path() {
        let mut a = lumped_solver();
        let nb = a.model().n_blocks();
        let p = lane_power(2, nb);
        let mut ws = BatchWorkspace::new();
        let mut lanes: Vec<(&mut TransientSolver, &[f64])> = vec![(&mut a, p.as_slice())];
        assert!(!step_lumped_batch(&mut lanes, DT, &mut ws).unwrap());
    }

    #[test]
    fn mismatched_thermal_configurations_defeat_batching() {
        // Different core counts ⇒ different models ⇒ different shared
        // propagators: the group must refuse rather than mix matrices.
        let mut a = lumped_solver();
        let model2 = ThermalModel::new(&Floorplan::ppc_cmp(2), &PackageConfig::default()).unwrap();
        let mut b = TransientSolver::new(model2, 7e-6);
        b.prewarm(DT).unwrap();
        let pa = lane_power(3, a.model().n_blocks());
        let pb = lane_power(4, b.model().n_blocks());
        let mut ws = BatchWorkspace::new();
        let mut lanes: Vec<(&mut TransientSolver, &[f64])> =
            vec![(&mut a, pa.as_slice()), (&mut b, pb.as_slice())];
        assert!(!step_lumped_batch(&mut lanes, DT, &mut ws).unwrap());
    }
}
