//! On-chip thermal sensor modeling.
//!
//! Every DTM policy in the study reads temperatures through thermal
//! sensors placed at the two register files of each core. Real sensors
//! add noise and report quantized values (the paper's real-system
//! measurements were rounded to 1 °C by the ACPI interface); this module
//! models both so policies can be stress-tested against imperfect inputs.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Sensor non-idealities applied to a true block temperature.
///
/// The model is applied in a fixed order — offset, then noise, then
/// quantization — so the calibration `offset` is itself subject to
/// rounding, exactly as a miscalibrated diode behind an ACPI register
/// would be.
///
/// # Determinism
///
/// [`SensorSpec::read`] is a pure function of `(spec, true_temp)` and
/// the state of the caller's `rng`: every random draw comes from that
/// generator and nothing else (no global RNG, no time). Two identically
/// seeded generators therefore yield bit-identical reading sequences
/// across runs and platforms, which is what lets the sweep harness
/// content-address noisy-sensor cells. A zero-`noise_std` spec draws
/// nothing, so it does not advance the generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorSpec {
    /// Standard deviation of additive Gaussian noise (°C).
    pub noise_std: f64,
    /// Quantization step (°C); 0 disables quantization.
    pub quantization: f64,
    /// Constant calibration offset (°C).
    pub offset: f64,
}

impl SensorSpec {
    /// An ideal sensor: no noise, no quantization, no offset.
    pub fn ideal() -> Self {
        SensorSpec {
            noise_std: 0.0,
            quantization: 0.0,
            offset: 0.0,
        }
    }

    /// A realistic on-die diode: ±0.5 °C 1σ noise, 0.25 °C quantization.
    pub fn realistic() -> Self {
        SensorSpec {
            noise_std: 0.5,
            quantization: 0.25,
            offset: 0.0,
        }
    }

    /// Applies the sensor model to a true temperature, drawing noise from
    /// `rng`.
    pub fn read<R: Rng + ?Sized>(&self, true_temp: f64, rng: &mut R) -> f64 {
        let mut t = true_temp + self.offset;
        if self.noise_std > 0.0 {
            t += gaussian(rng) * self.noise_std;
        }
        if self.quantization > 0.0 {
            t = (t / self.quantization).round() * self.quantization;
        }
        t
    }
}

impl Default for SensorSpec {
    fn default() -> Self {
        SensorSpec::ideal()
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// A bank of sensors attached to specific floorplan blocks.
///
/// # Examples
///
/// ```
/// use dtm_thermal::{SensorBank, SensorSpec};
/// use rand::SeedableRng;
///
/// let mut bank = SensorBank::new(vec![3, 7], SensorSpec::ideal(), 42);
/// let temps = vec![50.0; 10];
/// let readings = bank.read_all(&temps);
/// assert_eq!(readings, vec![50.0, 50.0]);
/// ```
#[derive(Debug, Clone)]
pub struct SensorBank {
    blocks: Vec<usize>,
    spec: SensorSpec,
    rng: rand::rngs::StdRng,
}

impl SensorBank {
    /// Creates a bank reading the given block indices with a shared spec
    /// and deterministic noise seed.
    pub fn new(blocks: Vec<usize>, spec: SensorSpec, seed: u64) -> Self {
        use rand::SeedableRng;
        SensorBank {
            blocks,
            spec,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// The block index each sensor observes.
    pub fn blocks(&self) -> &[usize] {
        &self.blocks
    }

    /// Reads every sensor against the true block temperature vector.
    ///
    /// # Panics
    ///
    /// Panics if any sensor's block index is out of range.
    pub fn read_all(&mut self, block_temps: &[f64]) -> Vec<f64> {
        self.blocks
            .iter()
            .map(|&b| self.spec.read(block_temps[b], &mut self.rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ideal_sensor_is_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = SensorSpec::ideal();
        for t in [-10.0, 0.0, 84.2, 120.5] {
            assert_eq!(s.read(t, &mut rng), t);
        }
    }

    #[test]
    fn quantization_rounds_to_step() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = SensorSpec {
            noise_std: 0.0,
            quantization: 1.0,
            offset: 0.0,
        };
        assert_eq!(s.read(83.4, &mut rng), 83.0);
        assert_eq!(s.read(83.6, &mut rng), 84.0);
    }

    #[test]
    fn offset_shifts_reading() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = SensorSpec {
            noise_std: 0.0,
            quantization: 0.0,
            offset: 2.5,
        };
        assert_eq!(s.read(80.0, &mut rng), 82.5);
    }

    #[test]
    fn offset_applies_before_quantization() {
        // Regression: the calibration offset must shift the reading
        // *before* rounding, so it can change which step the reading
        // lands on.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = SensorSpec {
            noise_std: 0.0,
            quantization: 1.0,
            offset: 0.3,
        };
        assert_eq!(s.read(83.4, &mut rng), 84.0); // 83.7 rounds up
        let unbiased = SensorSpec { offset: 0.0, ..s };
        assert_eq!(unbiased.read(83.4, &mut rng), 83.0);
    }

    #[test]
    fn reads_are_deterministic_for_identical_seeds() {
        // The full model (offset + noise + quantization) is a pure
        // function of the spec and the caller's RNG state: identically
        // seeded generators reproduce readings bit-for-bit.
        let s = SensorSpec {
            noise_std: 0.7,
            quantization: 0.25,
            offset: -1.5,
        };
        let mut a = rand::rngs::StdRng::seed_from_u64(0xDE7E);
        let mut b = rand::rngs::StdRng::seed_from_u64(0xDE7E);
        for i in 0..256 {
            let t = 50.0 + i as f64 * 0.17;
            assert_eq!(s.read(t, &mut a).to_bits(), s.read(t, &mut b).to_bits());
        }
    }

    #[test]
    fn zero_noise_reads_do_not_advance_the_rng() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let quiet = SensorSpec {
            noise_std: 0.0,
            quantization: 0.5,
            offset: 0.1,
        };
        for _ in 0..32 {
            quiet.read(70.0, &mut rng);
        }
        use rand::Rng;
        let mut fresh = rand::rngs::StdRng::seed_from_u64(3);
        assert_eq!(rng.random::<u64>(), fresh.random::<u64>());
    }

    #[test]
    fn noise_has_expected_statistics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = SensorSpec {
            noise_std: 1.0,
            quantization: 0.0,
            offset: 0.0,
        };
        let n = 20_000;
        let readings: Vec<f64> = (0..n).map(|_| s.read(0.0, &mut rng)).collect();
        let mean = readings.iter().sum::<f64>() / n as f64;
        let var = readings.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn bank_reads_are_deterministic_for_same_seed() {
        let temps = vec![60.0, 70.0, 80.0];
        let mut a = SensorBank::new(vec![0, 2], SensorSpec::realistic(), 9);
        let mut b = SensorBank::new(vec![0, 2], SensorSpec::realistic(), 9);
        assert_eq!(a.read_all(&temps), b.read_all(&temps));
    }

    #[test]
    fn bank_tracks_configured_blocks() {
        let mut bank = SensorBank::new(vec![1], SensorSpec::ideal(), 0);
        let r = bank.read_all(&[10.0, 55.0, 99.0]);
        assert_eq!(r, vec![55.0]);
        assert_eq!(bank.blocks(), &[1]);
    }
}
