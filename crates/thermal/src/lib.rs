//! HotSpot-style compact thermal modeling for multicore DTM studies.
//!
//! This crate turns a [`dtm_floorplan::Floorplan`] into an RC thermal
//! network ([`ThermalModel`]) and integrates it through time
//! ([`TransientSolver`]), with temperature-dependent leakage
//! ([`LeakageModel`]) and imperfect on-chip sensors ([`SensorBank`]).
//!
//! The formulation is the standard electro-thermal duality: heat sources
//! are currents, temperatures are voltages, conduction paths are
//! resistors, and thermal mass is capacitance. Both transient and
//! steady-state analyses are supported; the ISCA'06 DTM study requires
//! transients because its controllers react to temperature *trajectories*.
//!
//! # Examples
//!
//! Simulate one millisecond of a uniformly-powered 4-core chip:
//!
//! ```
//! use dtm_floorplan::Floorplan;
//! use dtm_thermal::{PackageConfig, ThermalModel, TransientSolver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fp = Floorplan::ppc_cmp(4);
//! let model = ThermalModel::new(&fp, &PackageConfig::default())?;
//! let mut sim = TransientSolver::new(model, 7e-6);
//! let power = vec![0.6; fp.len()];
//! sim.init_steady(&power)?;
//! for _ in 0..36 {
//!     sim.step(&power, 27.78e-6)?;
//! }
//! assert!(sim.block_temps().iter().all(|&t| t > 45.0));
//! # Ok(())
//! # }
//! ```

// Index-based loops are the clearest spelling of the LU and grid-stencil
// kernels below; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

mod batch;
mod grid;
mod leakage;
pub mod linalg;
mod model;
mod package;
mod propagator;
mod sensor;

pub use batch::{step_grid_batch, step_lumped_batch, BatchWorkspace};
pub use grid::{GridConfig, GridTemps, GridThermalModel, GridTransient};
pub use leakage::LeakageModel;
pub use model::{ThermalError, ThermalModel, TransientSolver};
pub use package::PackageConfig;
pub use propagator::SolverBackend;
pub use sensor::{SensorBank, SensorSpec};
