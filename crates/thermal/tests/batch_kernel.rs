//! Property tests for the cache-blocked batched propagator kernel:
//! [`matmul_strided`] must be bit-identical to [`affine_matvec`] per
//! lane for every shape, leave the padded tail of a structure-of-arrays
//! buffer untouched, and handle non-contiguous leading dimensions.

use dtm_thermal::linalg::{affine_matvec, matmul_strided, LANE_BLOCK};
use proptest::prelude::*;

/// Deterministic data fill, so each sampled shape gets its own values
/// without needing length-coupled vector strategies.
fn fill(seed: u64, len: usize) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn strided_kernel_is_bitwise_equal_to_the_scalar_kernel(
        shape in (1usize..24, 1usize..48, 1usize..12),
        pads in (0usize..5, 0usize..5),
        seed in 0u64..1_000_000,
    ) {
        let (rows, cols, lanes) = shape;
        let (ldx, ldy) = (cols + pads.0, rows + pads.1);
        let a = fill(seed, rows * cols);
        let bias = fill(seed ^ 1, rows);
        let x = fill(seed ^ 2, lanes * ldx);
        let mut y = vec![0.0; lanes * ldy];
        matmul_strided(rows, cols, &a, &bias, &x, ldx, &mut y, ldy, lanes);
        let mut yref = vec![0.0; rows];
        for l in 0..lanes {
            affine_matvec(cols, &a, &bias, &x[l * ldx..l * ldx + cols], &mut yref);
            for i in 0..rows {
                prop_assert_eq!(
                    y[l * ldy + i].to_bits(),
                    yref[i].to_bits(),
                    "lane {} row {} diverged", l, i
                );
            }
        }
    }

    #[test]
    fn padded_tail_lanes_and_rows_are_never_written(
        shape in (1usize..16, 1usize..24, 1usize..9),
        pady in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let (rows, cols, lanes) = shape;
        let ldy = rows + pady;
        // A full SoA buffer padded up to the block size, only `lanes`
        // of it active.
        let capacity = lanes.div_ceil(LANE_BLOCK) * LANE_BLOCK;
        let a = fill(seed, rows * cols);
        let bias = fill(seed ^ 3, rows);
        let x = fill(seed ^ 4, capacity * cols);
        let sentinel = f64::from_bits(0x7ff8_dead_beef_0001); // quiet NaN payload
        let mut y = vec![sentinel; capacity * ldy];
        matmul_strided(rows, cols, &a, &bias, &x, cols, &mut y, ldy, lanes);
        for l in 0..capacity {
            for i in 0..ldy {
                let bits = y[l * ldy + i].to_bits();
                if l < lanes && i < rows {
                    prop_assert_ne!(bits, sentinel.to_bits(), "({},{}) unwritten", l, i);
                } else {
                    prop_assert_eq!(bits, sentinel.to_bits(), "({},{}) clobbered", l, i);
                }
            }
        }
    }

    #[test]
    fn leading_dimension_slack_does_not_change_results(
        shape in (1usize..16, 1usize..24, 2usize..9),
        seed in 0u64..1_000_000,
    ) {
        // The same logical lanes through tight (ld = extent) and padded
        // buffers must produce bitwise-equal outputs: the kernel reads
        // only each column's first `cols` entries.
        let (rows, cols, lanes) = shape;
        let a = fill(seed, rows * cols);
        let bias = fill(seed ^ 5, rows);
        let tight_x = fill(seed ^ 6, lanes * cols);
        let (ldx, ldy) = (cols + 7, rows + 3);
        let mut padded_x = vec![f64::NAN; lanes * ldx];
        for l in 0..lanes {
            padded_x[l * ldx..l * ldx + cols].copy_from_slice(&tight_x[l * cols..(l + 1) * cols]);
        }
        let mut tight_y = vec![0.0; lanes * rows];
        let mut padded_y = vec![0.0; lanes * ldy];
        matmul_strided(rows, cols, &a, &bias, &tight_x, cols, &mut tight_y, rows, lanes);
        matmul_strided(rows, cols, &a, &bias, &padded_x, ldx, &mut padded_y, ldy, lanes);
        for l in 0..lanes {
            for i in 0..rows {
                prop_assert_eq!(
                    tight_y[l * rows + i].to_bits(),
                    padded_y[l * ldy + i].to_bits(),
                    "({},{}) stride-dependent result", l, i
                );
            }
        }
    }
}
