//! Property-based tests for the sensor model.

use dtm_thermal::SensorSpec;
use proptest::prelude::*;
use rand::SeedableRng;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0)
}

proptest! {
    /// A quantized reading is always an integer multiple of the step,
    /// for any true temperature and calibration offset.
    #[test]
    fn quantized_output_is_a_multiple_of_the_step(
        temp in -50.0f64..150.0,
        offset in -5.0f64..5.0,
        step in 0.05f64..4.0,
    ) {
        let s = SensorSpec { noise_std: 0.0, quantization: step, offset };
        let r = s.read(temp, &mut rng());
        let cycles = r / step;
        prop_assert!(
            (cycles - cycles.round()).abs() < 1e-9,
            "{r} is not a multiple of {step}"
        );
    }

    /// Rounding moves a reading by at most half a step (after the
    /// offset shift).
    #[test]
    fn quantization_error_is_bounded_by_half_a_step(
        temp in -50.0f64..150.0,
        offset in -5.0f64..5.0,
        step in 0.05f64..4.0,
    ) {
        let s = SensorSpec { noise_std: 0.0, quantization: step, offset };
        let r = s.read(temp, &mut rng());
        prop_assert!((r - (temp + offset)).abs() <= step / 2.0 + 1e-9);
    }

    /// For zero-noise sensors the model is monotone in the true
    /// temperature: a hotter block never reads cooler.
    #[test]
    fn zero_noise_reads_are_monotone(
        t1 in -50.0f64..150.0,
        dt in 0.0f64..50.0,
        offset in -5.0f64..5.0,
        step in 0.0f64..4.0,
    ) {
        let s = SensorSpec { noise_std: 0.0, quantization: step, offset };
        let lo = s.read(t1, &mut rng());
        let hi = s.read(t1 + dt, &mut rng());
        prop_assert!(hi >= lo, "read({}) = {hi} < read({t1}) = {lo}", t1 + dt);
    }

    /// Identically seeded generators reproduce noisy readings
    /// bit-for-bit — the determinism contract the sweep cache relies on.
    #[test]
    fn noisy_reads_replay_bit_identically(
        temp in -50.0f64..150.0,
        noise in 0.0f64..3.0,
        step in 0.0f64..2.0,
        seed in 0u64..u64::MAX,
    ) {
        let s = SensorSpec { noise_std: noise, quantization: step, offset: 0.0 };
        let mut a = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..4 {
            prop_assert_eq!(s.read(temp, &mut a).to_bits(), s.read(temp, &mut b).to_bits());
        }
    }
}
