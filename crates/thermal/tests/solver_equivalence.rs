//! Differential tests: the exact matrix-exponential propagator against
//! a fine-substep backward-Euler reference, plus fixpoint properties
//! both integrators must satisfy.
//!
//! The reference runs backward Euler with 1 µs substeps — well below
//! every silicon time constant — so its discretization error over a
//! 10 ms horizon is far smaller than the 0.05 °C agreement band the
//! differential assertions demand. Power schedules are randomized
//! piecewise-constant per-block patterns, the regime the propagator's
//! zero-order-hold assumption must reproduce exactly.

use dtm_floorplan::Floorplan;
use dtm_thermal::{
    GridConfig, GridThermalModel, GridTransient, PackageConfig, SolverBackend, ThermalModel,
    TransientSolver,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Engine power-sample interval (s).
const DT: f64 = 100_000.0 / 3.6e9;
/// Reference-integrator substep ceiling (s).
const REF_SUBSTEP: f64 = 1e-6;
/// Differential agreement band (°C).
const TOL: f64 = 0.05;

fn study_model() -> (Floorplan, ThermalModel) {
    let fp = Floorplan::ppc_cmp(4);
    let model = ThermalModel::new(&fp, &PackageConfig::default()).expect("model");
    (fp, model)
}

fn small_grid() -> (Floorplan, GridThermalModel) {
    let fp = Floorplan::ppc_cmp(4);
    let model = GridThermalModel::new(
        &fp,
        &PackageConfig::default(),
        GridConfig { cols: 8, rows: 12 },
    )
    .expect("grid model");
    (fp, model)
}

/// A piecewise-constant schedule: `n_seg` random per-block power
/// vectors, each held for `steps_per_seg` engine samples.
fn schedule(seed: u64, n_blocks: usize, n_seg: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_seg)
        .map(|_| (0..n_blocks).map(|_| rng.random_range(0.0..2.0)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Lumped solver: over a randomized 10 ms piecewise-constant power
    /// schedule, the propagator's trajectory stays within 0.05 °C of
    /// the 1 µs backward-Euler reference at every block and sample.
    #[test]
    fn lumped_propagator_matches_fine_euler_reference(
        seed in 0u64..u64::MAX,
        n_seg in 3usize..7,
    ) {
        let (fp, model) = study_model();
        let segs = schedule(seed, fp.len(), n_seg);
        let steps_per_seg = (0.010 / DT / n_seg as f64).ceil() as usize;

        let mut exact = TransientSolver::new(model.clone(), 7e-6);
        let mut reference = TransientSolver::new(model, REF_SUBSTEP)
            .with_backend(SolverBackend::BackwardEuler);
        exact.init_steady(&segs[0]).unwrap();
        reference.init_steady(&segs[0]).unwrap();

        let mut worst = 0.0f64;
        for power in &segs {
            for _ in 0..steps_per_seg {
                exact.step(power, DT).unwrap();
                reference.step(power, DT).unwrap();
                for (a, b) in exact.node_temps().iter().zip(reference.node_temps()) {
                    worst = worst.max((a - b).abs());
                }
            }
        }
        prop_assert!(!exact.in_fallback(), "propagator must not fall back");
        prop_assert!(worst < TOL, "max divergence {worst} C >= {TOL} C");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Grid solver: same differential bound on an 8x12 grid, where the
    /// propagator folds the block->cell power weights into `F`.
    #[test]
    fn grid_propagator_matches_fine_euler_reference(
        seed in 0u64..u64::MAX,
        n_seg in 3usize..6,
    ) {
        let (fp, model) = small_grid();
        let segs = schedule(seed, fp.len(), n_seg);
        let steps_per_seg = (0.010 / DT / n_seg as f64).ceil() as usize;

        let mut exact = GridTransient::new(model.clone(), 7e-6);
        let mut reference = GridTransient::new(model, REF_SUBSTEP)
            .with_backend(SolverBackend::BackwardEuler);
        exact.init_steady(&segs[0]).unwrap();
        reference.init_steady(&segs[0]).unwrap();

        let mut worst = 0.0f64;
        for power in &segs {
            for _ in 0..steps_per_seg {
                exact.step(power, DT).unwrap();
                reference.step(power, DT).unwrap();
                for (a, b) in exact.temps().cells().iter().zip(reference.temps().cells()) {
                    worst = worst.max((a - b).abs());
                }
            }
        }
        prop_assert!(!exact.in_fallback(), "propagator must not fall back");
        prop_assert!(worst < TOL, "max divergence {worst} C >= {TOL} C");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Stepping from the steady state of a constant power vector must
    /// stay at that steady state — the continuous fixpoint is a
    /// fixpoint of both discrete updates (exactly for the propagator,
    /// and for backward Euler because `A·T* = p` zeroes the increment).
    #[test]
    fn lumped_steady_state_is_a_fixpoint_of_both_backends(
        seed in 0u64..u64::MAX,
        backend_sel in 0usize..2,
    ) {
        let backend = [SolverBackend::Propagator, SolverBackend::BackwardEuler][backend_sel];
        let (fp, model) = study_model();
        let power = schedule(seed, fp.len(), 1).remove(0);
        let mut sim = TransientSolver::new(model, 7e-6).with_backend(backend);
        sim.init_steady(&power).unwrap();
        let steady = sim.node_temps().to_vec();
        for _ in 0..50 {
            sim.step(&power, DT).unwrap();
        }
        for (t, s) in sim.node_temps().iter().zip(&steady) {
            prop_assert!((t - s).abs() < 1e-9, "{backend:?} drifted: {t} vs {s}");
        }
    }

    /// Same fixpoint property for the grid integrator.
    #[test]
    fn grid_steady_state_is_a_fixpoint_of_both_backends(
        seed in 0u64..u64::MAX,
        backend_sel in 0usize..2,
    ) {
        let backend = [SolverBackend::Propagator, SolverBackend::BackwardEuler][backend_sel];
        let (fp, model) = small_grid();
        let power = schedule(seed, fp.len(), 1).remove(0);
        let mut sim = GridTransient::new(model, 7e-6).with_backend(backend);
        sim.init_steady(&power).unwrap();
        let steady = sim.temps().cells().to_vec();
        for _ in 0..50 {
            sim.step(&power, DT).unwrap();
        }
        for (t, s) in sim.temps().cells().iter().zip(&steady) {
            prop_assert!((t - s).abs() < 1e-9, "{backend:?} drifted: {t} vs {s}");
        }
    }

    /// With power removed, the hottest node must decay monotonically
    /// toward ambient and never undershoot it, under either backend.
    #[test]
    fn lumped_zero_power_decays_monotonically_to_ambient(
        seed in 0u64..u64::MAX,
        backend_sel in 0usize..2,
    ) {
        let backend = [SolverBackend::Propagator, SolverBackend::BackwardEuler][backend_sel];
        let (fp, model) = study_model();
        let ambient = model.ambient();
        let hot = schedule(seed, fp.len(), 1).remove(0);
        // A coarse substep keeps the backward-Euler half cheap; its
        // monotonicity (the property under test) holds for any substep
        // length, only accuracy degrades.
        let mut sim = TransientSolver::new(model, 100e-6).with_backend(backend);
        sim.init_steady(&hot).unwrap();
        let zero = vec![0.0; fp.len()];
        let mut prev = sim
            .node_temps()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        // dt ~ 100 engine samples keeps the run short while the decay
        // per step stays well above float noise.
        for _ in 0..60 {
            sim.step(&zero, 100.0 * DT).unwrap();
            let hottest = sim
                .node_temps()
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(hottest <= prev + 1e-12, "{backend:?} reheated: {hottest} > {prev}");
            prop_assert!(hottest >= ambient - 1e-9, "{backend:?} undershot ambient");
            prev = hottest;
        }
    }

    /// Same monotone-decay property for the grid integrator.
    #[test]
    fn grid_zero_power_decays_monotonically_to_ambient(
        seed in 0u64..u64::MAX,
        backend_sel in 0usize..2,
    ) {
        let backend = [SolverBackend::Propagator, SolverBackend::BackwardEuler][backend_sel];
        let (fp, model) = small_grid();
        let ambient = PackageConfig::default().ambient;
        let hot = schedule(seed, fp.len(), 1).remove(0);
        let mut sim = GridTransient::new(model, 100e-6).with_backend(backend);
        sim.init_steady(&hot).unwrap();
        let zero = vec![0.0; fp.len()];
        let mut prev = sim
            .temps()
            .cells()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        for _ in 0..60 {
            sim.step(&zero, 100.0 * DT).unwrap();
            let hottest = sim
                .temps()
                .cells()
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(hottest <= prev + 1e-12, "{backend:?} reheated: {hottest} > {prev}");
            prop_assert!(hottest >= ambient - 1e-9, "{backend:?} undershot ambient");
            prev = hottest;
        }
    }
}
