//! Counters and log-scale latency histograms.
//!
//! Both are thin handles over shared atomics: cloning a handle shares
//! the underlying cell, incrementing is one relaxed atomic op, and the
//! *disabled* state is `None` — one predictable branch, no allocation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event counter.
///
/// Handles are cheap to clone (they share one atomic); the default is
/// the disabled no-op, so instrumented code can hold counters
/// unconditionally and pay only an always-false branch when
/// observability is off.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// The disabled no-op counter.
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// A live standalone counter (always counts, even with no
    /// [`crate::ObsHandle`] attached — used for statistics that are
    /// reported unconditionally, like the result-cache hit rate, and
    /// adoptable into a registry later).
    pub fn active() -> Self {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    pub(crate) fn from_cell(cell: Arc<AtomicU64>) -> Self {
        Counter(Some(cell))
    }

    pub(crate) fn cell(&self) -> Option<&Arc<AtomicU64>> {
        self.0.as_ref()
    }

    /// Whether the counter actually counts.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Shared gauge storage: the value is an `i64` stored as its `u64` bit
/// pattern so updates stay single relaxed atomics.
#[derive(Debug)]
pub(crate) struct GaugeCore(AtomicU64);

impl GaugeCore {
    pub(crate) fn new() -> Self {
        GaugeCore(AtomicU64::new(0))
    }

    pub(crate) fn load(&self) -> i64 {
        self.0.load(Ordering::Relaxed) as i64
    }
}

/// An instantaneous level — queue depth, in-flight requests, open
/// connections — that moves both ways, unlike a [`Counter`].
///
/// Handles are cheap to clone (they share one atomic); the default is
/// the disabled no-op, matching the counter/histogram discipline.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCore>>);

impl Gauge {
    /// The disabled no-op gauge.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    /// A live standalone gauge (always tracks, adoptable into a
    /// registry later — see [`crate::ObsHandle::adopt_gauge`]).
    pub fn active() -> Self {
        Gauge(Some(Arc::new(GaugeCore::new())))
    }

    pub(crate) fn from_core(core: Arc<GaugeCore>) -> Self {
        Gauge(Some(core))
    }

    pub(crate) fn core(&self) -> Option<&Arc<GaugeCore>> {
        self.0.as_ref()
    }

    /// Whether the gauge actually tracks.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` (which may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.0.fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.0.store(v as u64, Ordering::Relaxed);
        }
    }

    /// The current level (0 when disabled).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load())
    }
}

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`. 64 value buckets cover all of
/// `u64`.
pub(crate) const N_BUCKETS: usize = 65;

/// Shared histogram storage.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (the value reported for
    /// quantiles landing in it).
    pub(crate) fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub(crate) fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub(crate) fn bucket_counts(&self) -> [u64; N_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The value at quantile `q` (0 ≤ q ≤ 1), reported as the upper
    /// bound of the log₂ bucket containing that rank — an upper
    /// estimate with ≤ 2× resolution, which is all a latency
    /// distribution needs. Returns 0 for an empty histogram.
    fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(N_BUCKETS - 1)
    }
}

/// A log₂-bucketed latency histogram handle (typically over
/// nanoseconds). Cloning shares the storage; the default is disabled.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// The disabled no-op histogram.
    pub fn disabled() -> Self {
        Histogram(None)
    }

    pub(crate) fn from_core(core: Arc<HistogramCore>) -> Self {
        Histogram(Some(core))
    }

    /// Whether the histogram actually records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.record(v);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.count())
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum())
    }

    /// Mean observation (0 for an empty or disabled histogram).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The value at quantile `q` — see [`HistogramCore::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.0.as_ref().map_or(0, |c| c.quantile(q))
    }

    /// Median (log₂-bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (log₂-bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (log₂-bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_counter_is_inert() {
        let c = Counter::disabled();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());
    }

    #[test]
    fn active_counter_counts_and_shares_on_clone() {
        let c = Counter::active();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c2.get(), 5);
    }

    #[test]
    fn disabled_gauge_is_inert() {
        let g = Gauge::disabled();
        g.inc();
        g.add(10);
        g.set(7);
        assert_eq!(g.get(), 0);
        assert!(!g.is_enabled());
    }

    #[test]
    fn gauge_moves_both_ways_and_shares_on_clone() {
        let g = Gauge::active();
        let g2 = g.clone();
        g.add(5);
        g2.dec();
        assert_eq!(g.get(), 4);
        g.add(-10);
        assert_eq!(g2.get(), -6, "gauges may go negative");
        g2.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(HistogramCore::bucket_of(0), 0);
        assert_eq!(HistogramCore::bucket_of(1), 1);
        assert_eq!(HistogramCore::bucket_of(2), 2);
        assert_eq!(HistogramCore::bucket_of(3), 2);
        assert_eq!(HistogramCore::bucket_of(4), 3);
        assert_eq!(HistogramCore::bucket_of(1023), 10);
        assert_eq!(HistogramCore::bucket_of(1024), 11);
        assert_eq!(HistogramCore::bucket_upper(0), 0);
        assert_eq!(HistogramCore::bucket_upper(10), 1023);
        assert_eq!(HistogramCore::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_bracket_a_known_distribution() {
        let h = Histogram::from_core(Arc::new(HistogramCore::new()));
        // 90 fast observations (~100 ns) and 10 slow ones (~1 ms).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.p50();
        assert!((64..=127).contains(&p50), "p50 = {p50}");
        let p95 = h.p95();
        assert!(p95 >= 524_288, "p95 = {p95} should land in the slow mode");
        assert!(h.p99() >= p95);
        let mean = h.mean();
        assert!((mean - 100_090.0).abs() < 1.0, "mean = {mean}");
    }

    #[test]
    fn empty_and_disabled_histograms_report_zero() {
        assert_eq!(Histogram::disabled().p99(), 0);
        assert_eq!(Histogram::disabled().mean(), 0.0);
        let h = Histogram::from_core(Arc::new(HistogramCore::new()));
        assert_eq!(h.p50(), 0);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let h = Histogram::from_core(Arc::new(HistogramCore::new()));
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.p99(), u64::MAX);
    }
}
