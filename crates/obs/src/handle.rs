//! [`ObsHandle`] — the one object instrumented code holds.
//!
//! A handle is either *disabled* (the default: a `None`, so every probe
//! is one predictable branch and zero allocations) or *enabled* (a
//! shared recorder: span ring + metric registry + monotonic clock).
//! Cloning is cheap and shares the recorder, which is how the engine,
//! watchdog, cache, and sweep workers all feed one trace.

use std::borrow::Cow;
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::export;
use crate::metrics::{Counter, Gauge, GaugeCore, Histogram, HistogramCore, N_BUCKETS};
use crate::ring::{Span, SpanRing};

/// Default span-ring capacity (spans retained, oldest evicted first).
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static TID: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// Small sequential id for the calling thread (first caller gets 0).
fn current_tid() -> u32 {
    TID.with(|t| {
        let v = t.get();
        if v != u32::MAX {
            v
        } else {
            let id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
            id
        }
    })
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    ring: Mutex<SpanRing>,
    seq: AtomicU64,
    /// Name → shared cell, insertion-ordered, deduplicated by name.
    counters: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    gauges: Mutex<Vec<(String, Arc<GaugeCore>)>>,
    histograms: Mutex<Vec<(String, Arc<HistogramCore>)>>,
}

/// A cloneable handle to a recorder, or the disabled no-op.
#[derive(Debug, Clone, Default)]
pub struct ObsHandle(Option<Arc<Inner>>);

impl ObsHandle {
    /// The disabled handle: every probe is a no-op behind one branch.
    pub fn disabled() -> Self {
        ObsHandle(None)
    }

    /// A live recorder retaining at most `ring_capacity` spans.
    pub fn enabled(ring_capacity: usize) -> Self {
        ObsHandle(Some(Arc::new(Inner {
            epoch: Instant::now(),
            ring: Mutex::new(SpanRing::with_capacity(ring_capacity)),
            seq: AtomicU64::new(0),
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
        })))
    }

    /// A live recorder with [`DEFAULT_RING_CAPACITY`].
    pub fn enabled_default() -> Self {
        Self::enabled(DEFAULT_RING_CAPACITY)
    }

    /// Whether probes through this handle record anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since this recorder was created (0 when disabled).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Records a completed span. `name` should be `&'static str` on hot
    /// paths (no allocation); owned names are fine for rare spans.
    #[inline]
    pub fn record_span(
        &self,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        start_ns: u64,
        dur_ns: u64,
    ) {
        if let Some(inner) = &self.0 {
            let span = Span {
                cat,
                name: name.into(),
                start_ns,
                dur_ns,
                tid: current_tid(),
                seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            };
            inner.ring.lock().unwrap().push(span);
        }
    }

    /// A counter registered under `name` (shared if the name exists;
    /// the disabled no-op when the handle is disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.0 {
            None => Counter::disabled(),
            Some(inner) => {
                let mut list = inner.counters.lock().unwrap();
                if let Some((_, cell)) = list.iter().find(|(n, _)| n == name) {
                    Counter::from_cell(cell.clone())
                } else {
                    let cell = Arc::new(AtomicU64::new(0));
                    list.push((name.to_string(), cell.clone()));
                    Counter::from_cell(cell)
                }
            }
        }
    }

    /// Registers an externally owned counter (e.g. the result cache's
    /// always-on statistics) under `name` so exporters see it. A
    /// disabled handle, or a disabled counter, is a no-op; re-adopting
    /// a name repoints it.
    pub fn adopt_counter(&self, name: &str, counter: &Counter) {
        if let (Some(inner), Some(cell)) = (&self.0, counter.cell()) {
            let mut list = inner.counters.lock().unwrap();
            if let Some(slot) = list.iter_mut().find(|(n, _)| n == name) {
                slot.1 = cell.clone();
            } else {
                list.push((name.to_string(), cell.clone()));
            }
        }
    }

    /// A gauge registered under `name` (shared if the name exists; the
    /// disabled no-op when the handle is disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.0 {
            None => Gauge::disabled(),
            Some(inner) => {
                let mut list = inner.gauges.lock().unwrap();
                if let Some((_, core)) = list.iter().find(|(n, _)| n == name) {
                    Gauge::from_core(core.clone())
                } else {
                    let core = Arc::new(GaugeCore::new());
                    list.push((name.to_string(), core.clone()));
                    Gauge::from_core(core)
                }
            }
        }
    }

    /// Registers an externally owned gauge under `name` so exporters
    /// see it — the gauge analogue of [`ObsHandle::adopt_counter`].
    pub fn adopt_gauge(&self, name: &str, gauge: &Gauge) {
        if let (Some(inner), Some(core)) = (&self.0, gauge.core()) {
            let mut list = inner.gauges.lock().unwrap();
            if let Some(slot) = list.iter_mut().find(|(n, _)| n == name) {
                slot.1 = core.clone();
            } else {
                list.push((name.to_string(), core.clone()));
            }
        }
    }

    /// A histogram registered under `name` (shared if the name exists;
    /// the disabled no-op when the handle is disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.0 {
            None => Histogram::disabled(),
            Some(inner) => {
                let mut list = inner.histograms.lock().unwrap();
                if let Some((_, core)) = list.iter().find(|(n, _)| n == name) {
                    Histogram::from_core(core.clone())
                } else {
                    let core = Arc::new(HistogramCore::new());
                    list.push((name.to_string(), core.clone()));
                    Histogram::from_core(core)
                }
            }
        }
    }

    /// The retained spans, oldest first (empty when disabled).
    pub fn spans(&self) -> Vec<Span> {
        match &self.0 {
            Some(inner) => inner.ring.lock().unwrap().snapshot(),
            None => Vec::new(),
        }
    }

    /// Total spans ever recorded, including ones evicted from the ring.
    pub fn spans_recorded(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.ring.lock().unwrap().total_recorded(),
            None => 0,
        }
    }

    /// The retained spans as a chrome://tracing JSON document
    /// (loadable in Perfetto or `chrome://tracing`).
    pub fn chrome_trace(&self) -> String {
        export::chrome_trace_json(&self.spans())
    }

    /// Counters, gauges, and histograms as a Prometheus-style text dump.
    pub fn prometheus(&self) -> String {
        let (counters, gauges, histograms) = self.metric_snapshot();
        export::prometheus_text(&counters, &gauges, &histograms)
    }

    /// Name-sorted snapshots of all registered metrics.
    #[allow(clippy::type_complexity)]
    fn metric_snapshot(
        &self,
    ) -> (
        Vec<(String, u64)>,
        Vec<(String, i64)>,
        Vec<(String, [u64; N_BUCKETS], u64, u64)>,
    ) {
        let Some(inner) = &self.0 else {
            return (Vec::new(), Vec::new(), Vec::new());
        };
        let mut counters: Vec<(String, u64)> = inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, i64)> = inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(n, g)| (n.clone(), g.load()))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, [u64; N_BUCKETS], u64, u64)> = inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| (n.clone(), h.bucket_counts(), h.sum(), h.count()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        (counters, gauges, histograms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = ObsHandle::disabled();
        assert!(!obs.is_enabled());
        assert_eq!(obs.now_ns(), 0);
        obs.record_span("engine", "thermal", 0, 10);
        assert!(obs.spans().is_empty());
        assert_eq!(obs.spans_recorded(), 0);
        assert!(!obs.counter("c").is_enabled());
        assert!(!obs.histogram("h").is_enabled());
    }

    #[test]
    fn clones_share_the_recorder() {
        let obs = ObsHandle::enabled(8);
        let obs2 = obs.clone();
        obs.record_span("engine", "a", 0, 1);
        obs2.record_span("engine", "b", 1, 1);
        assert_eq!(obs.spans().len(), 2);
        obs.counter("n").inc();
        assert_eq!(obs2.counter("n").get(), 1);
    }

    #[test]
    fn registry_dedupes_by_name() {
        let obs = ObsHandle::enabled(8);
        let a = obs.counter("same");
        let b = obs.counter("same");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let h1 = obs.histogram("h");
        let h2 = obs.histogram("h");
        h1.record(3);
        assert_eq!(h2.count(), 1);
    }

    #[test]
    fn gauges_register_and_export() {
        let obs = ObsHandle::enabled(8);
        let depth = obs.gauge("dtm_serve_queue_depth");
        depth.add(3);
        obs.gauge("dtm_serve_queue_depth").dec();
        assert_eq!(depth.get(), 2, "same name shares the cell");
        let dump = obs.prometheus();
        assert!(
            dump.contains("# TYPE dtm_serve_queue_depth gauge"),
            "{dump}"
        );
        assert!(dump.contains("dtm_serve_queue_depth 2"), "{dump}");
        assert!(!ObsHandle::disabled().gauge("g").is_enabled());
    }

    #[test]
    fn adopted_gauges_appear_in_the_dump() {
        let obs = ObsHandle::enabled(8);
        let external = Gauge::active();
        external.set(-4);
        obs.adopt_gauge("dtm_serve_inflight", &external);
        let dump = obs.prometheus();
        assert!(dump.contains("dtm_serve_inflight -4"), "{dump}");
        ObsHandle::disabled().adopt_gauge("x", &external);
        obs.adopt_gauge("y", &Gauge::disabled());
        assert!(!obs.prometheus().contains("y "));
    }

    #[test]
    fn adopted_counters_appear_in_the_dump() {
        let obs = ObsHandle::enabled(8);
        let external = Counter::active();
        external.add(7);
        obs.adopt_counter("dtm_cache_probes_total", &external);
        let dump = obs.prometheus();
        assert!(dump.contains("dtm_cache_probes_total 7"), "{dump}");
        // Disabled handles and disabled counters are silently ignored.
        ObsHandle::disabled().adopt_counter("x", &external);
        obs.adopt_counter("y", &Counter::disabled());
        assert!(!obs.prometheus().contains("y "));
    }

    #[test]
    fn monotonic_clock_and_sequence() {
        let obs = ObsHandle::enabled(8);
        let a = obs.now_ns();
        let b = obs.now_ns();
        assert!(b >= a);
        obs.record_span("engine", "x", a, 1);
        obs.record_span("engine", "y", b, 1);
        let spans = obs.spans();
        assert!(spans[0].seq < spans[1].seq);
    }
}
