//! Exporters: chrome://tracing JSON and Prometheus-style text.
//!
//! Both are plain string builders — the recorder stays dependency-free
//! and the formats are simple enough that hand-rolled emission (with
//! proper JSON string escaping) is clearer than pulling in a codec.

use crate::metrics::{HistogramCore, N_BUCKETS};
use crate::ring::Span;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders spans as a chrome://tracing JSON document (object format,
/// complete "X" duration events, timestamps in microseconds). Loadable
/// in Perfetto and `chrome://tracing`.
pub(crate) fn chrome_trace_json(spans: &[Span]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"seq\":{}}}}}",
            escape_json(&s.name),
            escape_json(s.cat),
            s.tid,
            s.start_ns as f64 / 1_000.0,
            s.dur_ns as f64 / 1_000.0,
            s.seq,
        );
    }
    out.push_str("]}");
    out
}

/// Renders metric snapshots as Prometheus-style text exposition:
/// counters and gauges as `<name> <value>`, histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`.
pub(crate) fn prometheus_text(
    counters: &[(String, u64)],
    gauges: &[(String, i64)],
    histograms: &[(String, [u64; N_BUCKETS], u64, u64)],
) -> String {
    let mut out = String::new();
    for (name, value) in counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, buckets, sum, count) in histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                HistogramCore::bucket_upper(i)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "{name}_sum {sum}");
        let _ = writeln!(out, "{name}_count {count}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsHandle;
    use std::borrow::Cow;

    #[test]
    fn escaping_covers_quotes_and_controls() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\n\t"), "x\\n\\t");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_trace_has_complete_events_in_microseconds() {
        let spans = vec![Span {
            cat: "engine",
            name: Cow::Borrowed("thermal"),
            start_ns: 1_500,
            dur_ns: 250,
            tid: 3,
            seq: 9,
        }];
        let doc = chrome_trace_json(&spans);
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ns\""));
        assert!(doc.contains("\"name\":\"thermal\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ts\":1.500"));
        assert!(doc.contains("\"dur\":0.250"));
        assert!(doc.contains("\"tid\":3"));
        assert!(doc.ends_with("]}"));
    }

    #[test]
    fn empty_trace_is_still_a_valid_document() {
        let doc = chrome_trace_json(&[]);
        assert_eq!(doc, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}");
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let obs = ObsHandle::enabled(8);
        let h = obs.histogram("dtm_phase_thermal_ns");
        h.record(1); // bucket le="1"
        h.record(1);
        h.record(100); // bucket le="127"
        let dump = obs.prometheus();
        assert!(
            dump.contains("# TYPE dtm_phase_thermal_ns histogram"),
            "{dump}"
        );
        assert!(
            dump.contains("dtm_phase_thermal_ns_bucket{le=\"1\"} 2"),
            "{dump}"
        );
        assert!(
            dump.contains("dtm_phase_thermal_ns_bucket{le=\"127\"} 3"),
            "{dump}"
        );
        assert!(
            dump.contains("dtm_phase_thermal_ns_bucket{le=\"+Inf\"} 3"),
            "{dump}"
        );
        assert!(dump.contains("dtm_phase_thermal_ns_sum 102"), "{dump}");
        assert!(dump.contains("dtm_phase_thermal_ns_count 3"), "{dump}");
    }

    #[test]
    fn prometheus_counters_have_type_lines() {
        let obs = ObsHandle::enabled(8);
        obs.counter("dtm_cache_hits_total").add(4);
        let dump = obs.prometheus();
        assert!(dump.contains("# TYPE dtm_cache_hits_total counter"));
        assert!(dump.contains("dtm_cache_hits_total 4"));
    }
}
