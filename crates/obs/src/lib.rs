//! # dtm-obs — low-overhead tracing, metrics, and profiling
//!
//! Observability for the DTM simulator's hot loop and sweep harness:
//!
//! * **Spans** — a fixed-capacity ring buffer ([`ring::SpanRing`]) of
//!   named intervals with monotonic nanosecond timestamps. The ring is
//!   preallocated and overwrites its oldest entry, so recording never
//!   allocates and memory is bounded regardless of run length.
//! * **Metrics** — [`Counter`]s and log₂-bucketed latency
//!   [`Histogram`]s (p50/p95/p99) keyed by label, each a handful of
//!   relaxed atomic ops to update.
//! * **Exporters** — a chrome://tracing JSON document (loadable in
//!   Perfetto) and a Prometheus-style text dump, both produced from an
//!   [`ObsHandle`] snapshot.
//!
//! The whole subsystem hangs off [`ObsHandle`]. The default handle is
//! *disabled*: every probe short-circuits on one predictable `None`
//! check, performs **zero allocations** (asserted by a counting
//! allocator in this crate's tests), and records nothing — so
//! instrumentation can be threaded through the engine unconditionally
//! and compiled runs pay essentially nothing when profiling is off.

pub mod export;
pub mod handle;
pub mod metrics;
pub mod ring;

pub use handle::{ObsHandle, DEFAULT_RING_CAPACITY};
pub use metrics::{Counter, Gauge, Histogram};
pub use ring::{Span, SpanRing};

#[cfg(test)]
mod alloc_count {
    //! A counting global allocator for the zero-allocation assertions.
    //! The count is thread-local (const-initialised `Cell`, so the TLS
    //! access itself never allocates) to keep parallel test threads
    //! from polluting each other's measurements.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.with(|c| c.set(c.get() + 1));
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static COUNTING: CountingAlloc = CountingAlloc;

    pub fn allocations_on_this_thread() -> u64 {
        ALLOCS.with(|c| c.get())
    }
}

#[cfg(test)]
mod zero_alloc_tests {
    use super::alloc_count::allocations_on_this_thread;
    use super::*;

    #[test]
    fn disabled_recorder_performs_zero_allocations() {
        let obs = ObsHandle::disabled();
        let counter = obs.counter("dtm_cache_probes_total");
        let hist = obs.histogram("dtm_phase_thermal_ns");

        let before = allocations_on_this_thread();
        for i in 0..10_000u64 {
            let t = obs.now_ns();
            obs.record_span("engine", "thermal", t, 42);
            counter.inc();
            counter.add(i);
            hist.record(i);
            let _ = obs.is_enabled();
        }
        let after = allocations_on_this_thread();
        assert_eq!(
            after - before,
            0,
            "disabled observability must not allocate on the probe path"
        );
    }

    #[test]
    fn enabled_ring_does_not_allocate_once_full() {
        // Static-name spans reuse the overwritten slot in place, so a
        // full ring records without touching the allocator.
        let obs = ObsHandle::enabled(64);
        for i in 0..64u64 {
            obs.record_span("engine", "warmup", i, 1);
        }
        let before = allocations_on_this_thread();
        for i in 0..1_000u64 {
            obs.record_span("engine", "steady", i, 1);
        }
        let after = allocations_on_this_thread();
        assert_eq!(
            after - before,
            0,
            "a full ring with static span names must record allocation-free"
        );
        assert_eq!(obs.spans_recorded(), 1_064);
    }
}
