//! The fixed-capacity span ring buffer.
//!
//! Spans are pushed at simulation rates (several per 28 µs engine
//! step), so the recorder must never allocate on the hot path and must
//! bound its memory: a preallocated ring that overwrites the oldest
//! span keeps the *most recent* window of execution, which is exactly
//! the window a trace viewer wants when something goes wrong at the end
//! of a run.

use std::borrow::Cow;

/// One recorded duration: a named interval on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Category (chrome-trace `cat`), a coarse grouping such as
    /// `engine` or `harness`.
    pub cat: &'static str,
    /// Span name. Static for hot-path spans (engine phases); owned for
    /// per-cell harness spans, which occur at most once per second.
    pub name: Cow<'static, str>,
    /// Start, in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small sequential id of the recording thread.
    pub tid: u32,
    /// Global record sequence number (monotonic per recorder), used to
    /// keep a stable order among spans with equal timestamps.
    pub seq: u64,
}

/// A preallocated ring of spans. Pushing at capacity overwrites the
/// oldest span; iteration is always oldest → newest.
#[derive(Debug)]
pub struct SpanRing {
    buf: Vec<Span>,
    /// Next write position (== `buf.len()` until the first wrap).
    next: usize,
    /// Total spans ever pushed (≥ `buf.len()`).
    total: u64,
    capacity: usize,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans, allocated up front.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "span ring capacity must be positive");
        SpanRing {
            buf: Vec::with_capacity(capacity),
            next: 0,
            total: 0,
            capacity,
        }
    }

    /// Records a span. Allocation-free once the ring is full (the
    /// overwritten slot is reused in place).
    pub fn push(&mut self, span: Span) {
        if self.buf.len() < self.capacity {
            self.buf.push(span);
        } else {
            self.buf[self.next] = span;
        }
        self.next = (self.next + 1) % self.capacity;
        self.total += 1;
    }

    /// Number of spans currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total spans ever pushed, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// The retained spans, oldest first.
    pub fn iter_in_order(&self) -> impl Iterator<Item = &Span> {
        let split = if self.buf.len() < self.capacity {
            0 // not yet wrapped: buf is already oldest-first
        } else {
            self.next
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// The retained spans, oldest first, as an owned vector.
    pub fn snapshot(&self) -> Vec<Span> {
        self.iter_in_order().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64) -> Span {
        Span {
            cat: "test",
            name: Cow::Borrowed("s"),
            start_ns: 10 * seq,
            dur_ns: 5,
            tid: 0,
            seq,
        }
    }

    #[test]
    fn fills_then_wraps_overwriting_oldest() {
        let mut r = SpanRing::with_capacity(4);
        for i in 0..4 {
            r.push(span(i));
        }
        assert_eq!(r.len(), 4);
        let seqs: Vec<u64> = r.iter_in_order().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);

        // Two more: 0 and 1 are evicted, order stays oldest → newest.
        r.push(span(4));
        r.push(span(5));
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_recorded(), 6);
        let seqs: Vec<u64> = r.iter_in_order().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
    }

    #[test]
    fn wraparound_never_reorders_across_many_generations() {
        let mut r = SpanRing::with_capacity(7);
        for i in 0..1000 {
            r.push(span(i));
        }
        let seqs: Vec<u64> = r.iter_in_order().map(|s| s.seq).collect();
        assert_eq!(seqs, (993..1000).collect::<Vec<_>>());
        // Timestamps are monotone in retained order too.
        let starts: Vec<u64> = r.iter_in_order().map(|s| s.start_ns).collect();
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn partial_fill_iterates_in_push_order() {
        let mut r = SpanRing::with_capacity(16);
        for i in 0..5 {
            r.push(span(i));
        }
        let seqs: Vec<u64> = r.snapshot().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        SpanRing::with_capacity(0);
    }
}
