//! The 22 SPEC CPU2000 benchmark characterizations.
//!
//! Each benchmark is described by a [`StreamProfile`] (and, for the four
//! benchmarks the paper observed oscillating between temperatures, a
//! second "alternate-phase" profile with a switching period). The
//! parameters are calibrated against published characteristics:
//!
//! - `gzip`/`bzip2` are the hottest integer codes (high-IPC, integer-
//!   register-file bound); `sixtrack` is the hottest FP code.
//! - `mcf` is by far the coolest: memory-bound with a pointer-chasing
//!   working set far beyond the L2.
//! - `bzip2`, `ammp`, `facerec`, `fma3d` show multi-degree temperature
//!   oscillation (Table 1b), modeled as two-phase behaviour.

use dtm_microarch::StreamProfile;
use serde::{Deserialize, Serialize};

/// SPEC suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPECint 2000.
    Int,
    /// SPECfp 2000.
    Fp,
}

impl Suite {
    /// One-letter tag used in workload mix labels ("IIFF" etc.).
    pub fn tag(self) -> char {
        match self {
            Suite::Int => 'I',
            Suite::Fp => 'F',
        }
    }
}

/// Two-phase behaviour for benchmarks without a steady temperature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// The alternate phase's stream profile.
    pub alt: StreamProfile,
    /// Phase period in trace samples (27.78 µs each).
    pub period_samples: u32,
    /// Fraction of the period spent in the *base* profile.
    pub base_duty: f64,
}

/// A benchmark: name, suite, and stream characterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    /// SPEC benchmark name (lowercase, e.g. `gzip`).
    pub name: String,
    /// Suite membership.
    pub suite: Suite,
    /// Primary stream profile.
    pub profile: StreamProfile,
    /// Optional alternate phase.
    pub phase: Option<PhaseSpec>,
}

impl Benchmark {
    /// Deterministic per-benchmark RNG seed (stable across runs).
    pub fn seed(&self) -> u64 {
        self.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        })
    }
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

fn int_base() -> StreamProfile {
    StreamProfile {
        frac_int_mul: 0.01,
        frac_fp: 0.0,
        frac_fp_div: 0.0,
        frac_load: 0.25,
        frac_store: 0.10,
        frac_branch: 0.15,
        mean_dep_distance: 6.0,
        branch_predictability: 0.92,
        branch_taken_bias: 0.6,
        data_working_set: 256 * KB,
        data_locality: 0.9,
        code_working_set: 32 * KB,
    }
}

fn fp_base() -> StreamProfile {
    StreamProfile {
        frac_int_mul: 0.01,
        frac_fp: 0.45,
        frac_fp_div: 0.01,
        frac_load: 0.22,
        frac_store: 0.08,
        frac_branch: 0.05,
        mean_dep_distance: 10.0,
        branch_predictability: 0.98,
        branch_taken_bias: 0.8,
        data_working_set: 2 * MB,
        data_locality: 0.85,
        code_working_set: 16 * KB,
    }
}

macro_rules! with {
    ($base:expr, { $($field:ident : $value:expr),* $(,)? }) => {{
        let mut p = $base;
        $(p.$field = $value;)*
        p
    }};
}

/// The full 22-benchmark catalog (11 SPECint + 11 SPECfp).
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = Vec::new();
    let mut int = |name: &str, profile: StreamProfile, phase: Option<PhaseSpec>| {
        v.push(Benchmark {
            name: name.to_string(),
            suite: Suite::Int,
            profile,
            phase,
        })
    };

    // ---- SPECint ----
    int(
        "gzip",
        with!(int_base(), {
            mean_dep_distance: 9.0,
            data_working_set: 192 * KB,
            data_locality: 0.93,
            branch_predictability: 0.94,
        }),
        None,
    );
    int(
        "vpr",
        with!(int_base(), {
            mean_dep_distance: 6.5,
            data_working_set: MB,
            branch_predictability: 0.88,
        }),
        None,
    );
    int(
        "gcc",
        with!(int_base(), {
            mean_dep_distance: 6.5,
            data_working_set: 768 * KB,
            data_locality: 0.9,
            code_working_set: 128 * KB,
            branch_predictability: 0.9,
        }),
        None,
    );
    int(
        "mcf",
        with!(int_base(), {
            frac_load: 0.35,
            frac_branch: 0.12,
            mean_dep_distance: 2.5,
            data_working_set: 64 * MB,
            data_locality: 0.45,
            branch_predictability: 0.9,
        }),
        None,
    );
    int(
        "crafty",
        with!(int_base(), {
            mean_dep_distance: 7.0,
            data_working_set: MB,
            branch_predictability: 0.9,
            frac_branch: 0.18,
        }),
        None,
    );
    int(
        "parser",
        with!(int_base(), {
            mean_dep_distance: 6.0,
            data_working_set: 768 * KB,
            data_locality: 0.9,
            branch_predictability: 0.9,
        }),
        None,
    );
    int(
        "eon",
        with!(int_base(), {
            frac_fp: 0.08,
            mean_dep_distance: 7.5,
            data_working_set: 256 * KB,
            branch_predictability: 0.95,
        }),
        None,
    );
    int(
        "perlbmk",
        with!(int_base(), {
            mean_dep_distance: 6.5,
            data_working_set: 512 * KB,
            code_working_set: 128 * KB,
            branch_predictability: 0.93,
        }),
        None,
    );
    int(
        "gap",
        with!(int_base(), {
            mean_dep_distance: 6.5,
            data_working_set: MB,
            branch_predictability: 0.93,
        }),
        None,
    );
    // bzip2 oscillates (Table 1b: 67–72 °C): a hot gzip-like phase and a
    // cooler, more memory-bound phase.
    let bzip2_hot = with!(int_base(), {
        mean_dep_distance: 9.5,
        data_working_set: 256 * KB,
        data_locality: 0.93,
        branch_predictability: 0.94,
    });
    let bzip2_cool = with!(int_base(), {
        mean_dep_distance: 4.5,
        data_working_set: MB,
        data_locality: 0.87,
    });
    int(
        "bzip2",
        bzip2_hot,
        Some(PhaseSpec {
            alt: bzip2_cool,
            period_samples: 360, // 10 ms phase cycle
            base_duty: 0.55,
        }),
    );
    int(
        "twolf",
        with!(int_base(), {
            mean_dep_distance: 5.0,
            data_working_set: MB,
            branch_predictability: 0.87,
        }),
        None,
    );

    let mut fp = |name: &str, profile: StreamProfile, phase: Option<PhaseSpec>| {
        v.push(Benchmark {
            name: name.to_string(),
            suite: Suite::Fp,
            profile,
            phase,
        })
    };

    // ---- SPECfp ----
    fp(
        "swim",
        with!(fp_base(), {
            data_working_set: MB,
            data_locality: 0.8,
            mean_dep_distance: 9.0,
        }),
        None,
    );
    fp(
        "mgrid",
        with!(fp_base(), {
            data_working_set: MB,
            data_locality: 0.85,
            mean_dep_distance: 10.0,
        }),
        None,
    );
    fp(
        "applu",
        with!(fp_base(), {
            data_working_set: MB,
            data_locality: 0.84,
            mean_dep_distance: 9.0,
        }),
        None,
    );
    fp(
        "mesa",
        with!(fp_base(), {
            frac_fp: 0.3,
            frac_branch: 0.1,
            data_working_set: 512 * KB,
            mean_dep_distance: 8.0,
        }),
        None,
    );
    fp(
        "art",
        with!(fp_base(), {
            frac_fp: 0.35,
            data_working_set: MB,
            data_locality: 0.8,
            mean_dep_distance: 5.0,
        }),
        None,
    );
    fp(
        "equake",
        with!(fp_base(), {
            data_working_set: 1536 * KB,
            data_locality: 0.85,
            mean_dep_distance: 7.0,
        }),
        None,
    );
    // facerec oscillates (65–71 °C).
    let facerec_hot = with!(fp_base(), {
        frac_fp: 0.5,
        data_working_set: 512 * KB,
        mean_dep_distance: 12.0,
    });
    let facerec_cool = with!(fp_base(), {
        data_working_set: 1536 * KB,
        data_locality: 0.84,
        mean_dep_distance: 7.0,
    });
    fp(
        "facerec",
        facerec_hot,
        Some(PhaseSpec {
            alt: facerec_cool,
            period_samples: 360,
            base_duty: 0.5,
        }),
    );
    // ammp oscillates and is relatively cool (58–64 °C).
    let ammp_warm = with!(fp_base(), {
        frac_fp: 0.38,
        data_working_set: 768 * KB,
        data_locality: 0.87,
        mean_dep_distance: 7.0,
    });
    let ammp_cool = with!(fp_base(), {
        frac_fp: 0.3,
        data_working_set: 6 * MB,
        data_locality: 0.7,
        mean_dep_distance: 4.0,
    });
    fp(
        "ammp",
        ammp_warm,
        Some(PhaseSpec {
            alt: ammp_cool,
            period_samples: 360,
            base_duty: 0.45,
        }),
    );
    fp(
        "lucas",
        with!(fp_base(), {
            frac_fp: 0.5,
            data_working_set: MB,
            data_locality: 0.86,
            mean_dep_distance: 10.0,
        }),
        None,
    );
    // fma3d oscillates (61–67 °C).
    let fma3d_warm = with!(fp_base(), {
        frac_fp: 0.42,
        data_working_set: MB,
        mean_dep_distance: 9.0,
    });
    let fma3d_cool = with!(fp_base(), {
        frac_fp: 0.3,
        data_working_set: 1536 * KB,
        data_locality: 0.82,
        mean_dep_distance: 5.0,
    });
    fp(
        "fma3d",
        fma3d_warm,
        Some(PhaseSpec {
            alt: fma3d_cool,
            period_samples: 360,
            base_duty: 0.5,
        }),
    );
    // sixtrack: the hottest FP benchmark — cache-resident, high IPC.
    fp(
        "sixtrack",
        with!(fp_base(), {
            frac_fp: 0.52,
            data_working_set: 384 * KB,
            data_locality: 0.92,
            mean_dep_distance: 13.0,
        }),
        None,
    );

    v
}

/// Looks up one benchmark by name.
///
/// # Panics
///
/// Panics if the name is not in the catalog.
pub fn benchmark(name: &str) -> Benchmark {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_eleven_of_each_suite() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 22);
        let ints = all.iter().filter(|b| b.suite == Suite::Int).count();
        let fps = all.iter().filter(|b| b.suite == Suite::Fp).count();
        assert_eq!(ints, 11);
        assert_eq!(fps, 11);
    }

    #[test]
    fn names_are_unique() {
        let all = all_benchmarks();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn all_profiles_validate() {
        for b in all_benchmarks() {
            b.profile.validate();
            if let Some(ph) = &b.phase {
                ph.alt.validate();
                assert!(ph.period_samples > 0);
                assert!((0.0..=1.0).contains(&ph.base_duty));
            }
        }
    }

    #[test]
    fn exactly_the_paper_benchmarks_oscillate() {
        let phased: Vec<String> = all_benchmarks()
            .into_iter()
            .filter(|b| b.phase.is_some())
            .map(|b| b.name)
            .collect();
        assert_eq!(phased, vec!["bzip2", "facerec", "ammp", "fma3d"]);
    }

    #[test]
    fn mcf_is_memory_bound() {
        let mcf = benchmark("mcf");
        assert!(mcf.profile.data_working_set >= 32 * MB);
        assert!(mcf.profile.data_locality < 0.5);
    }

    #[test]
    fn int_benchmarks_avoid_fp_instructions() {
        for b in all_benchmarks().iter().filter(|b| b.suite == Suite::Int) {
            assert!(
                b.profile.frac_fp <= 0.1,
                "{} has frac_fp = {}",
                b.name,
                b.profile.frac_fp
            );
        }
    }

    #[test]
    fn fp_benchmarks_use_fp_heavily() {
        for b in all_benchmarks().iter().filter(|b| b.suite == Suite::Fp) {
            assert!(
                b.profile.frac_fp >= 0.25,
                "{} has frac_fp = {}",
                b.name,
                b.profile.frac_fp
            );
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let g1 = benchmark("gzip").seed();
        let g2 = benchmark("gzip").seed();
        assert_eq!(g1, g2);
        assert_ne!(g1, benchmark("mcf").seed());
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        benchmark("doom3");
    }

    #[test]
    fn suite_tags() {
        assert_eq!(Suite::Int.tag(), 'I');
        assert_eq!(Suite::Fp.tag(), 'F');
    }
}
