//! Power-trace generation and caching.
//!
//! Mirrors the study's toolflow (Figure 2): each benchmark is run through
//! the performance model (Turandot role) and the power model (PowerTimer
//! role) to produce a looping power trace of 27.78 µs samples, which the
//! thermal/timing simulator then replays under DTM control.

use crate::profiles::Benchmark;
use dtm_microarch::{CoreConfig, CoreSim};
use dtm_power::{PowerModel, PowerTrace};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Trace-generation parameters.
#[derive(Debug, Clone)]
pub struct TraceGenConfig {
    /// Core model configuration.
    pub core: CoreConfig,
    /// Power calibration.
    pub power: PowerModel,
    /// Trace length in samples (before looping). 720 samples = 20 ms.
    pub samples: usize,
    /// Statistical sampling factor for the performance model (1 = exact;
    /// 5 simulates 20 k of every 100 k cycles and extrapolates).
    pub sampling: u64,
    /// Warm-up cycles before recording (cache/predictor warm-up).
    pub warmup_cycles: u64,
}

impl Default for TraceGenConfig {
    fn default() -> Self {
        let core = CoreConfig::default();
        let power = PowerModel::default_90nm(core.clock_hz);
        TraceGenConfig {
            core,
            power,
            samples: 720,
            sampling: 5,
            warmup_cycles: 500_000,
        }
    }
}

impl TraceGenConfig {
    /// A small/fast configuration for unit tests.
    pub fn fast_test() -> Self {
        TraceGenConfig {
            samples: 72,
            sampling: 10,
            warmup_cycles: 100_000,
            ..TraceGenConfig::default()
        }
    }
}

/// Generates the looping power trace for one benchmark.
///
/// Phase-varying benchmarks switch stream profiles inside the trace
/// according to their [`crate::PhaseSpec`]; the trace length is extended
/// to a whole number of phase periods so the loop is seamless.
pub fn generate_trace(bench: &Benchmark, cfg: &TraceGenConfig) -> PowerTrace {
    let mut samples_target = cfg.samples.max(1);
    if let Some(phase) = &bench.phase {
        let period = phase.period_samples as usize;
        samples_target = samples_target.div_ceil(period) * period;
    }

    let mut core = CoreSim::new(cfg.core.clone(), bench.profile, bench.seed());
    core.run_cycles(cfg.warmup_cycles.max(1));

    let mut samples = Vec::with_capacity(samples_target);
    for i in 0..samples_target {
        if let Some(phase) = &bench.phase {
            let pos = i % phase.period_samples as usize;
            let in_base = (pos as f64) < phase.base_duty * phase.period_samples as f64;
            core.set_profile(if in_base { bench.profile } else { phase.alt });
        }
        let activity = core.run_sample(cfg.sampling);
        samples.push(cfg.power.convert(&activity));
    }
    PowerTrace::new(bench.name.clone(), cfg.core.sample_period(), samples)
}

/// A thread-safe, lazily-populated cache of benchmark traces.
///
/// Trace generation is deterministic, so the cache is purely a
/// performance optimization for experiment drivers that replay the same
/// benchmark in many workloads and policies.
#[derive(Debug)]
pub struct TraceLibrary {
    cfg: TraceGenConfig,
    cache: Mutex<HashMap<String, Arc<PowerTrace>>>,
    disk_dir: Option<PathBuf>,
    decodes: AtomicU64,
}

impl TraceLibrary {
    /// Creates an empty library with the given generation parameters.
    pub fn new(cfg: TraceGenConfig) -> Self {
        TraceLibrary {
            cfg,
            cache: Mutex::new(HashMap::new()),
            disk_dir: None,
            decodes: AtomicU64::new(0),
        }
    }

    /// Enables a persistent on-disk cache: traces are stored under
    /// `dir` keyed by benchmark name and a fingerprint of the
    /// generation parameters, so reruns (and other processes) skip the
    /// expensive performance-model pass. Generation is deterministic,
    /// making the cache purely an optimization.
    pub fn with_disk_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.disk_dir = Some(dir.into());
        self
    }

    /// A stable fingerprint of the generation parameters (FNV-1a over
    /// the salient fields), used in disk-cache file names.
    fn fingerprint(&self) -> u64 {
        let cfg = &self.cfg;
        let repr = format!(
            "{:?}|{:?}|{}|{}|{}",
            cfg.core, cfg.power, cfg.samples, cfg.sampling, cfg.warmup_cycles
        );
        repr.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        })
    }

    fn disk_path(&self, bench_name: &str) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{bench_name}-{:016x}.dtmtrace", self.fingerprint())))
    }

    /// The generation configuration.
    pub fn config(&self) -> &TraceGenConfig {
        &self.cfg
    }

    /// Returns (generating on first use) the trace for `bench`.
    pub fn trace(&self, bench: &Benchmark) -> Arc<PowerTrace> {
        if let Some(t) = self
            .cache
            .lock()
            .expect("trace cache poisoned")
            .get(&bench.name)
        {
            return Arc::clone(t);
        }
        // Try the disk cache, then generate. Both happen outside the
        // lock; duplicate generation on a race is harmless
        // (deterministic output).
        self.decodes.fetch_add(1, Ordering::Relaxed);
        let trace = Arc::new(self.load_or_generate(bench));
        let mut cache = self.cache.lock().expect("trace cache poisoned");
        Arc::clone(cache.entry(bench.name.clone()).or_insert(trace))
    }

    fn load_or_generate(&self, bench: &Benchmark) -> PowerTrace {
        if let Some(path) = self.disk_path(&bench.name) {
            if let Ok(file) = std::fs::File::open(&path) {
                if let Ok(trace) = PowerTrace::read_from(std::io::BufReader::new(file)) {
                    return trace;
                }
                // Corrupt cache entry: fall through and regenerate.
            }
            let trace = generate_trace(bench, &self.cfg);
            // Best-effort write; failures (read-only media, races) are
            // not errors.
            if std::fs::create_dir_all(path.parent().expect("cache path has parent")).is_ok() {
                let tmp = path.with_extension("tmp");
                if let Ok(file) = std::fs::File::create(&tmp) {
                    if trace.write_to(std::io::BufWriter::new(file)).is_ok() {
                        let _ = std::fs::rename(&tmp, &path);
                    }
                }
            }
            return trace;
        }
        generate_trace(bench, &self.cfg)
    }

    /// Number of traces currently cached.
    pub fn cached(&self) -> usize {
        self.cache.lock().expect("trace cache poisoned").len()
    }

    /// How many times a [`TraceLibrary::trace`] call missed the
    /// in-memory memo and had to decode (disk-load or regenerate) a
    /// trace. Executors that hoist trace resolution out of their hot
    /// loop assert this stays at one decode per distinct benchmark.
    pub fn decode_count(&self) -> u64 {
        self.decodes.load(Ordering::Relaxed)
    }
}

impl Default for TraceLibrary {
    fn default() -> Self {
        TraceLibrary::new(TraceGenConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::benchmark;
    use dtm_floorplan::UnitKind;

    #[test]
    fn trace_generation_is_deterministic() {
        let cfg = TraceGenConfig::fast_test();
        let b = benchmark("gzip");
        let t1 = generate_trace(&b, &cfg);
        let t2 = generate_trace(&b, &cfg);
        assert_eq!(t1, t2);
    }

    #[test]
    fn gzip_trace_is_int_rf_dominated() {
        let t = generate_trace(&benchmark("gzip"), &TraceGenConfig::fast_test());
        assert!(t.mean_unit_power(UnitKind::IntRegFile) > t.mean_unit_power(UnitKind::FpRegFile));
        assert!(t.mean_core_power() > 3.0);
    }

    #[test]
    fn lucas_trace_is_fp_rf_dominated() {
        let t = generate_trace(&benchmark("lucas"), &TraceGenConfig::fast_test());
        assert!(t.mean_unit_power(UnitKind::FpRegFile) > t.mean_unit_power(UnitKind::IntRegFile));
    }

    #[test]
    fn mcf_is_much_cooler_than_gzip() {
        let cfg = TraceGenConfig::fast_test();
        let gzip = generate_trace(&benchmark("gzip"), &cfg);
        let mcf = generate_trace(&benchmark("mcf"), &cfg);
        assert!(mcf.mean_core_power() < 0.75 * gzip.mean_core_power());
        assert!(mcf.mean_ipc() < 0.5 * gzip.mean_ipc());
    }

    #[test]
    fn phased_benchmark_trace_length_is_whole_periods() {
        let cfg = TraceGenConfig::fast_test();
        let b = benchmark("bzip2");
        let t = generate_trace(&b, &cfg);
        let period = b.phase.unwrap().period_samples as usize;
        assert_eq!(t.len() % period, 0);
    }

    #[test]
    fn phased_benchmark_power_varies_within_trace() {
        let mut cfg = TraceGenConfig::fast_test();
        cfg.samples = 360;
        let b = benchmark("bzip2");
        let t = generate_trace(&b, &cfg);
        let period = b.phase.unwrap().period_samples as u64;
        let duty = b.phase.unwrap().base_duty;
        let split = (duty * period as f64) as u64;
        let base_mean: f64 =
            (0..split).map(|i| t.sample(i).core_power()).sum::<f64>() / split as f64;
        let alt_mean: f64 = (split..period)
            .map(|i| t.sample(i).core_power())
            .sum::<f64>()
            / (period - split) as f64;
        assert!(
            base_mean > alt_mean * 1.1,
            "base {base_mean} vs alt {alt_mean}"
        );
    }

    #[test]
    fn disk_cache_round_trips() {
        let dir = std::env::temp_dir().join(format!("dtm-trace-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let b = benchmark("eon");
        let lib1 = TraceLibrary::new(TraceGenConfig::fast_test()).with_disk_cache(&dir);
        let t1 = lib1.trace(&b);
        // A fresh library instance must read the cached file and produce
        // an identical trace.
        let lib2 = TraceLibrary::new(TraceGenConfig::fast_test()).with_disk_cache(&dir);
        let t2 = lib2.trace(&b);
        assert_eq!(*t1, *t2);
        // The cache file exists and has the fingerprinted name.
        let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_disk_cache_entry_is_regenerated_and_repaired() {
        let dir = std::env::temp_dir().join(format!("dtm-trace-trunc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let b = benchmark("applu");
        let lib1 = TraceLibrary::new(TraceGenConfig::fast_test()).with_disk_cache(&dir);
        let t1 = lib1.trace(&b);

        // Truncate the cache file mid-record, as a crashed or
        // out-of-disk writer would leave it.
        let path = lib1.disk_path(&b.name).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 3]).unwrap();

        // A fresh library must fall back to regeneration, produce the
        // identical trace, and repair the cache entry on the way out.
        let lib2 = TraceLibrary::new(TraceGenConfig::fast_test()).with_disk_cache(&dir);
        let t2 = lib2.trace(&b);
        assert_eq!(*t1, *t2);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            full,
            "regeneration must rewrite the damaged entry"
        );

        // Same for garbage content (wrong magic / random bytes).
        std::fs::write(&path, b"not a trace file").unwrap();
        let lib3 = TraceLibrary::new(TraceGenConfig::fast_test()).with_disk_cache(&dir);
        assert_eq!(*lib3.trace(&b), *t1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_configs_use_different_cache_keys() {
        let lib_a = TraceLibrary::new(TraceGenConfig::fast_test());
        let mut cfg_b = TraceGenConfig::fast_test();
        cfg_b.samples *= 2;
        let lib_b = TraceLibrary::new(cfg_b);
        assert_ne!(lib_a.fingerprint(), lib_b.fingerprint());
    }

    #[test]
    fn library_caches_traces() {
        let lib = TraceLibrary::new(TraceGenConfig::fast_test());
        let b = benchmark("mesa");
        let t1 = lib.trace(&b);
        let t2 = lib.trace(&b);
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(lib.cached(), 1);
    }
}
