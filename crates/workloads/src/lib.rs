//! SPEC 2000-like workloads for the multicore DTM study.
//!
//! Provides the 22-benchmark catalog ([`all_benchmarks`]) with
//! calibrated synthetic stream profiles, the 12 four-process workloads of
//! the paper's Table 4 ([`standard_workloads`]), and power-trace
//! generation with caching ([`TraceLibrary`]).
//!
//! # Examples
//!
//! ```
//! use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};
//!
//! let lib = TraceLibrary::new(TraceGenConfig::fast_test());
//! let w7 = &standard_workloads()[6]; // gzip-twolf-ammp-lucas
//! for bench in w7.resolve() {
//!     let trace = lib.trace(&bench);
//!     assert!(trace.mean_core_power() > 0.0);
//! }
//! ```

mod profiles;
mod tracegen;
mod workload;

pub use profiles::{all_benchmarks, benchmark, Benchmark, PhaseSpec, Suite};
pub use tracegen::{generate_trace, TraceGenConfig, TraceLibrary};
pub use workload::{standard_workloads, Workload};
