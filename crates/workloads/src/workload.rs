//! The study's 12 four-process workloads (Table 4).

use crate::profiles::{benchmark, Benchmark, Suite};
use serde::{Deserialize, Serialize};

/// A multiprogrammed workload: one benchmark per initial core.
///
/// The study's grids use four-process mixes (Table 4); single-process
/// workloads (e.g. the Table 1 thermal characterization, one benchmark
/// on one core) use [`Workload::solo`]. The `Debug` representation of
/// a `Vec<String>` is identical to the `[String; 4]` it replaced, so
/// content-addressed cache keys for four-process cells are unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Identifier, e.g. `workload7`.
    pub id: String,
    /// Benchmark names, in initial core order.
    pub benchmarks: Vec<String>,
}

impl Workload {
    /// Creates a workload from four benchmark names.
    ///
    /// # Panics
    ///
    /// Panics if any name is not in the catalog.
    pub fn new(id: impl Into<String>, names: [&str; 4]) -> Self {
        Self::from_names(id, &names)
    }

    /// Creates a workload from any number of benchmark names.
    ///
    /// # Panics
    ///
    /// Panics if any name is not in the catalog, or if `names` is
    /// empty.
    pub fn from_names(id: impl Into<String>, names: &[&str]) -> Self {
        assert!(!names.is_empty(), "workload needs at least one benchmark");
        for n in names {
            let _ = benchmark(n); // validate
        }
        Workload {
            id: id.into(),
            benchmarks: names.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// A single-process workload named after its benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the name is not in the catalog.
    pub fn solo(name: &str) -> Self {
        Self::from_names(name, &[name])
    }

    /// Non-panicking [`Workload::from_names`] for untrusted input (a
    /// network request naming benchmarks): unknown names and empty
    /// lists are `Err`s describing the problem.
    ///
    /// # Errors
    ///
    /// Names the first benchmark missing from the catalog.
    pub fn try_from_names(id: impl Into<String>, names: &[String]) -> Result<Self, String> {
        if names.is_empty() {
            return Err("workload needs at least one benchmark".into());
        }
        for n in names {
            if !crate::profiles::all_benchmarks()
                .iter()
                .any(|b| &b.name == n)
            {
                return Err(format!("unknown benchmark `{n}`"));
            }
        }
        Ok(Workload {
            id: id.into(),
            benchmarks: names.to_vec(),
        })
    }

    /// Looks up one of the study's 12 standard workloads by id
    /// (`workload1` … `workload12`) or by hyphenated display name.
    pub fn standard(name: &str) -> Option<Self> {
        standard_workloads()
            .into_iter()
            .find(|w| w.id == name || w.display_name() == name)
    }

    /// The resolved benchmark descriptions.
    pub fn resolve(&self) -> Vec<Benchmark> {
        self.benchmarks.iter().map(|n| benchmark(n)).collect()
    }

    /// Mix label in the paper's style, e.g. `IIFF`.
    pub fn mix_label(&self) -> String {
        self.resolve().iter().map(|b| b.suite.tag()).collect()
    }

    /// Hyphenated display name, e.g. `gzip-twolf-ammp-lucas`.
    pub fn display_name(&self) -> String {
        self.benchmarks.join("-")
    }

    /// Number of integer benchmarks in the mix.
    pub fn int_count(&self) -> usize {
        self.resolve()
            .iter()
            .filter(|b| b.suite == Suite::Int)
            .count()
    }
}

/// The 12 workloads of Table 4, in order.
pub fn standard_workloads() -> Vec<Workload> {
    vec![
        Workload::new("workload1", ["gcc", "gzip", "mcf", "vpr"]),
        Workload::new("workload2", ["crafty", "eon", "parser", "perlbmk"]),
        Workload::new("workload3", ["bzip2", "gzip", "twolf", "swim"]),
        Workload::new("workload4", ["crafty", "perlbmk", "vpr", "mgrid"]),
        Workload::new("workload5", ["gcc", "parser", "applu", "mesa"]),
        Workload::new("workload6", ["bzip2", "eon", "art", "facerec"]),
        Workload::new("workload7", ["gzip", "twolf", "ammp", "lucas"]),
        Workload::new("workload8", ["parser", "vpr", "fma3d", "sixtrack"]),
        Workload::new("workload9", ["gcc", "applu", "mgrid", "swim"]),
        Workload::new("workload10", ["mcf", "ammp", "art", "mesa"]),
        Workload::new("workload11", ["ammp", "facerec", "fma3d", "swim"]),
        Workload::new("workload12", ["art", "lucas", "mgrid", "sixtrack"]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_twelve_workloads() {
        assert_eq!(standard_workloads().len(), 12);
    }

    #[test]
    fn mix_labels_match_table4() {
        let expected = [
            "IIII", "IIII", "IIIF", "IIIF", "IIFF", "IIFF", "IIFF", "IIFF", "IFFF", "IFFF", "FFFF",
            "FFFF",
        ];
        for (w, e) in standard_workloads().iter().zip(expected) {
            assert_eq!(w.mix_label(), e, "{}", w.id);
        }
    }

    #[test]
    fn try_from_names_rejects_unknown_benchmarks() {
        let ok = Workload::try_from_names("w", &["gzip".to_string(), "mcf".to_string()]).unwrap();
        assert_eq!(ok.resolve().len(), 2);
        assert!(Workload::try_from_names("w", &[]).is_err());
        let err = Workload::try_from_names("w", &["quake3".to_string()]).unwrap_err();
        assert!(err.contains("quake3"), "{err}");
    }

    #[test]
    fn standard_lookup_by_id_and_display_name() {
        let by_id = Workload::standard("workload7").unwrap();
        assert_eq!(by_id.display_name(), "gzip-twolf-ammp-lucas");
        let by_name = Workload::standard("gzip-twolf-ammp-lucas").unwrap();
        assert_eq!(by_id, by_name);
        assert!(Workload::standard("workload13").is_none());
    }

    #[test]
    fn workload7_is_the_migration_case_study() {
        let w = &standard_workloads()[6];
        assert_eq!(w.display_name(), "gzip-twolf-ammp-lucas");
    }

    #[test]
    fn int_count_decreases_down_the_table() {
        let counts: Vec<usize> = standard_workloads().iter().map(|w| w.int_count()).collect();
        assert_eq!(counts, vec![4, 4, 3, 3, 2, 2, 2, 2, 1, 1, 0, 0]);
    }

    #[test]
    fn ids_are_unique() {
        let ws = standard_workloads();
        for (i, a) in ws.iter().enumerate() {
            for b in &ws[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn bad_name_rejected() {
        Workload::new("x", ["gzip", "gzip", "gzip", "quake3"]);
    }

    #[test]
    fn solo_workload_resolves_one_benchmark() {
        let w = Workload::solo("sixtrack");
        assert_eq!(w.id, "sixtrack");
        assert_eq!(w.resolve().len(), 1);
        assert_eq!(w.mix_label(), "F");
        assert_eq!(w.display_name(), "sixtrack");
        assert_eq!(w.int_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_workload_rejected() {
        Workload::from_names("x", &[]);
    }

    #[test]
    fn vec_debug_matches_the_old_array_debug() {
        // The result-cache canonical representation embeds
        // `{:?}` of `benchmarks`; Vec and [String; 4] must print
        // identically or every four-process cache key changes.
        let v: Vec<String> = vec!["gcc".into(), "gzip".into(), "mcf".into(), "vpr".into()];
        let a: [String; 4] = ["gcc".into(), "gzip".into(), "mcf".into(), "vpr".into()];
        assert_eq!(format!("{v:?}"), format!("{a:?}"));
    }
}
