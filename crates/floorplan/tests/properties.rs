//! Property-based tests for floorplan geometry.

use dtm_floorplan::{Block, CoreTemplate, Floorplan, UnitKind};
use proptest::prelude::*;

proptest! {
    /// Any scaled instantiation of the stock core template produces a
    /// valid floorplan for any supported core count.
    #[test]
    fn scaled_templates_validate(
        scale in 0.5f64..3.0,
        cores in 1usize..7,
    ) {
        let stock = CoreTemplate::ppc_core();
        let template = CoreTemplate::new(
            stock.units().to_vec(),
            stock.core_width * scale,
            stock.core_height * scale,
        );
        // Instantiate manually into a row of cores; geometry must hold.
        let mut blocks = Vec::new();
        for c in 0..cores {
            blocks.extend(template.instantiate(c, c as f64 * template.core_width, 0.0));
        }
        let fp = Floorplan::from_blocks(
            blocks,
            cores as f64 * template.core_width,
            template.core_height,
        );
        prop_assert!(fp.validate().is_ok());
    }

    /// Shared-edge computation is symmetric and bounded by the smaller
    /// block's perimeter for arbitrary abutting rectangles.
    #[test]
    fn shared_edges_are_symmetric_and_bounded(
        w1 in 0.1f64..2.0,
        h1 in 0.1f64..2.0,
        w2 in 0.1f64..2.0,
        h2 in 0.1f64..2.0,
        dy in -1.5f64..1.5,
    ) {
        // Block B abuts block A's right edge at vertical offset dy.
        let a = Block::new("a", UnitKind::Fxu, None, 0.0, 0.0, w1, h1);
        let b = Block::new("b", UnitKind::Fpu, None, w1, dy, w2, h2);
        let fp = Floorplan::from_blocks(vec![a, b], w1 + w2, 4.0);
        let e01 = fp.shared_edge(0, 1);
        let e10 = fp.shared_edge(1, 0);
        prop_assert!((e01 - e10).abs() < 1e-12);
        prop_assert!(e01 <= h1.min(h2) + 1e-12);
        prop_assert!(e01 >= 0.0);
    }

    /// Adjacency lists never pair a block with itself, and every listed
    /// pair genuinely shares an edge.
    #[test]
    fn adjacency_pairs_are_real(cores in 1usize..5) {
        let fp = Floorplan::ppc_cmp(cores);
        for (i, j, e) in fp.adjacency() {
            prop_assert!(i != j);
            prop_assert!(e > 0.0);
            prop_assert!((fp.shared_edge(i, j) - e).abs() < 1e-12);
        }
    }

    /// Translation preserves area and dimensions.
    #[test]
    fn translation_is_rigid(
        x in -5.0f64..5.0,
        y in -5.0f64..5.0,
        w in 0.1f64..2.0,
        h in 0.1f64..2.0,
        dx in -3.0f64..3.0,
        dy in -3.0f64..3.0,
    ) {
        let b = Block::new("b", UnitKind::Lsu, Some(0), x, y, w, h);
        let t = b.translated(dx, dy);
        prop_assert!((t.area() - b.area()).abs() < 1e-12);
        prop_assert!((t.left() - (x + dx)).abs() < 1e-12);
        prop_assert!((t.top() - (y + h + dy)).abs() < 1e-12);
    }
}
