//! Rectangular floorplan blocks and microarchitectural unit kinds.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The microarchitectural unit a floorplan block implements.
///
/// The per-core set matches the out-of-order PowerPC-class core of the
/// ISCA'06 study (Table 3): two fixed-point units, two floating-point
/// units, two load/store units, one branch unit, separate integer and
/// floating-point register files (the study's canonical hotspots), rename
/// logic, split issue queues, a combined branch predictor, fetch logic,
/// and split L1 caches. `L2` is the shared cache bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UnitKind {
    /// Instruction fetch and decode logic.
    Fetch,
    /// Combined bimodal + gshare + selector branch predictor arrays.
    BranchPred,
    /// L1 instruction cache (64 KB, 2-way).
    Icache,
    /// L1 data cache (32 KB, 2-way).
    Dcache,
    /// Register rename and dispatch logic.
    Rename,
    /// Memory/integer issue queues (2×20 entries).
    IssueInt,
    /// Floating-point issue queues (2×5 entries).
    IssueFp,
    /// Integer register file and its access logic (120 GPR + 90 SPR).
    IntRegFile,
    /// Floating-point register file and its access logic (108 FPR).
    FpRegFile,
    /// Fixed-point execution units (×2).
    Fxu,
    /// Floating-point execution units (×2).
    Fpu,
    /// Load/store units (×2).
    Lsu,
    /// Branch execution unit.
    Bxu,
    /// Shared L2 cache (4 MB, 4-way).
    L2,
}

impl UnitKind {
    /// The units instantiated once per core, in canonical order.
    pub fn per_core() -> &'static [UnitKind] {
        use UnitKind::*;
        &[
            Fetch, BranchPred, Icache, Dcache, Rename, IssueInt, IssueFp, IntRegFile, FpRegFile,
            Fxu, Fpu, Lsu, Bxu,
        ]
    }

    /// All unit kinds including shared ones.
    pub fn all() -> &'static [UnitKind] {
        use UnitKind::*;
        &[
            Fetch, BranchPred, Icache, Dcache, Rename, IssueInt, IssueFp, IntRegFile, FpRegFile,
            Fxu, Fpu, Lsu, Bxu, L2,
        ]
    }

    /// Short lowercase mnemonic used in block names (`core0_intrf` etc.).
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnitKind::Fetch => "fetch",
            UnitKind::BranchPred => "bpred",
            UnitKind::Icache => "icache",
            UnitKind::Dcache => "dcache",
            UnitKind::Rename => "rename",
            UnitKind::IssueInt => "issint",
            UnitKind::IssueFp => "issfp",
            UnitKind::IntRegFile => "intrf",
            UnitKind::FpRegFile => "fprf",
            UnitKind::Fxu => "fxu",
            UnitKind::Fpu => "fpu",
            UnitKind::Lsu => "lsu",
            UnitKind::Bxu => "bxu",
            UnitKind::L2 => "l2",
        }
    }

    /// Whether this kind hosts a thermal sensor in the study (the two
    /// register files are the sensed hotspots).
    pub fn is_sensed_hotspot(self) -> bool {
        matches!(self, UnitKind::IntRegFile | UnitKind::FpRegFile)
    }
}

impl fmt::Display for UnitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// An axis-aligned rectangular block on the die.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    name: String,
    kind: UnitKind,
    core: Option<usize>,
    x: f64,
    y: f64,
    width: f64,
    height: f64,
}

impl Block {
    /// Creates a block with lower-left corner `(x, y)` and the given
    /// dimensions, all in meters. `core` is `None` for shared blocks.
    pub fn new(
        name: impl Into<String>,
        kind: UnitKind,
        core: Option<usize>,
        x: f64,
        y: f64,
        width: f64,
        height: f64,
    ) -> Self {
        Block {
            name: name.into(),
            kind,
            core,
            x,
            y,
            width,
            height,
        }
    }

    /// Unique block name, e.g. `core2_fprf`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The microarchitectural unit this block implements.
    pub fn kind(&self) -> UnitKind {
        self.kind
    }

    /// Owning core index, or `None` for shared blocks (L2).
    pub fn core(&self) -> Option<usize> {
        self.core
    }

    /// Left edge x-coordinate (m).
    pub fn left(&self) -> f64 {
        self.x
    }

    /// Right edge x-coordinate (m).
    pub fn right(&self) -> f64 {
        self.x + self.width
    }

    /// Bottom edge y-coordinate (m).
    pub fn bottom(&self) -> f64 {
        self.y
    }

    /// Top edge y-coordinate (m).
    pub fn top(&self) -> f64 {
        self.y + self.height
    }

    /// Width (m).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Height (m).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Area (m²).
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Center point `(x, y)` (m).
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.width / 2.0, self.y + self.height / 2.0)
    }

    /// Returns a copy translated by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Block {
        let mut b = self.clone();
        b.x += dx;
        b.y += dy;
        b
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] @({:.3e},{:.3e}) {:.3e}×{:.3e} m",
            self.name, self.kind, self.x, self.y, self.width, self.height
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_core_units_are_distinct() {
        let units = UnitKind::per_core();
        for (i, a) in units.iter().enumerate() {
            for b in &units[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(units.len(), 13);
    }

    #[test]
    fn all_includes_l2() {
        assert!(UnitKind::all().contains(&UnitKind::L2));
        assert_eq!(UnitKind::all().len(), 14);
    }

    #[test]
    fn only_register_files_are_sensed() {
        for k in UnitKind::all() {
            let sensed = k.is_sensed_hotspot();
            let is_rf = matches!(k, UnitKind::IntRegFile | UnitKind::FpRegFile);
            assert_eq!(sensed, is_rf, "{k}");
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let all = UnitKind::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.mnemonic(), b.mnemonic());
            }
        }
    }

    #[test]
    fn block_geometry_accessors() {
        let b = Block::new("t", UnitKind::Fxu, Some(1), 1.0, 2.0, 3.0, 4.0);
        assert_eq!(b.left(), 1.0);
        assert_eq!(b.right(), 4.0);
        assert_eq!(b.bottom(), 2.0);
        assert_eq!(b.top(), 6.0);
        assert_eq!(b.area(), 12.0);
        assert_eq!(b.center(), (2.5, 4.0));
        assert_eq!(b.core(), Some(1));
    }

    #[test]
    fn translated_moves_block() {
        let b = Block::new("t", UnitKind::Fxu, None, 0.0, 0.0, 1.0, 1.0);
        let t = b.translated(5.0, -2.0);
        assert_eq!(t.left(), 5.0);
        assert_eq!(t.bottom(), -2.0);
        assert_eq!(t.width(), 1.0);
        assert_eq!(t.name(), "t");
    }

    #[test]
    fn display_is_nonempty() {
        let b = Block::new("t", UnitKind::L2, None, 0.0, 0.0, 1.0, 1.0);
        assert!(!format!("{b}").is_empty());
        assert!(!format!("{:?}", b).is_empty());
    }
}
