//! CMP layout generation: a parameterized core template replicated into a
//! grid, plus a shared L2 bank spanning the die width.

use crate::{Block, Floorplan, UnitKind};
use serde::{Deserialize, Serialize};

/// A core's internal layout expressed in fractional coordinates.
///
/// Each entry places one [`UnitKind`] at `(x, y, w, h)` fractions of the
/// core's bounding box. [`CoreTemplate::ppc_core`] provides the layout used
/// throughout the study; custom templates allow floorplanning experiments
/// (e.g. moving the register files apart).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreTemplate {
    units: Vec<(UnitKind, f64, f64, f64, f64)>,
    /// Physical core width in meters.
    pub core_width: f64,
    /// Physical core height in meters.
    pub core_height: f64,
}

impl CoreTemplate {
    /// Builds a template from explicit fractional placements.
    ///
    /// # Panics
    ///
    /// Panics if any fraction lies outside `[0, 1]`.
    pub fn new(
        units: Vec<(UnitKind, f64, f64, f64, f64)>,
        core_width: f64,
        core_height: f64,
    ) -> Self {
        for &(kind, x, y, w, h) in &units {
            assert!(
                (0.0..=1.0).contains(&x)
                    && (0.0..=1.0).contains(&y)
                    && x + w <= 1.0 + 1e-12
                    && y + h <= 1.0 + 1e-12
                    && w > 0.0
                    && h > 0.0,
                "unit {kind} placed outside the core box"
            );
        }
        CoreTemplate {
            units,
            core_width,
            core_height,
        }
    }

    /// The PowerPC-class out-of-order core layout (4.5 mm × 4.5 mm at
    /// 90 nm): L1 caches along the bottom, front-end above them, the
    /// integer cluster (issue queue, register file, FXUs, LSUs) next, and
    /// the floating-point cluster (issue queue, register file, FPUs) on
    /// top. The two register files — the study's sensed hotspots — are
    /// deliberately compact, giving them the highest power density.
    pub fn ppc_core() -> Self {
        use UnitKind::*;
        CoreTemplate::new(
            vec![
                // Bottom row: split L1 caches.
                (Icache, 0.00, 0.00, 0.50, 0.30),
                (Dcache, 0.50, 0.00, 0.50, 0.30),
                // Front-end row.
                (Fetch, 0.00, 0.30, 0.30, 0.20),
                (BranchPred, 0.30, 0.30, 0.25, 0.20),
                (Rename, 0.55, 0.30, 0.25, 0.20),
                (Bxu, 0.80, 0.30, 0.20, 0.20),
                // Integer cluster.
                (IssueInt, 0.00, 0.50, 0.22, 0.25),
                (IntRegFile, 0.22, 0.50, 0.18, 0.25),
                (Fxu, 0.40, 0.50, 0.30, 0.25),
                (Lsu, 0.70, 0.50, 0.30, 0.25),
                // Floating-point cluster.
                (IssueFp, 0.00, 0.75, 0.25, 0.25),
                (FpRegFile, 0.25, 0.75, 0.20, 0.25),
                (Fpu, 0.45, 0.75, 0.55, 0.25),
            ],
            4.5e-3,
            4.5e-3,
        )
    }

    /// The fractional placements `(kind, x, y, w, h)`.
    pub fn units(&self) -> &[(UnitKind, f64, f64, f64, f64)] {
        &self.units
    }

    /// Instantiates the template as physical blocks for core `core_idx`
    /// with the core's lower-left corner at `(ox, oy)` meters.
    pub fn instantiate(&self, core_idx: usize, ox: f64, oy: f64) -> Vec<Block> {
        self.units
            .iter()
            .map(|&(kind, x, y, w, h)| {
                Block::new(
                    format!("core{core_idx}_{}", kind.mnemonic()),
                    kind,
                    Some(core_idx),
                    ox + x * self.core_width,
                    oy + y * self.core_height,
                    w * self.core_width,
                    h * self.core_height,
                )
            })
            .collect()
    }
}

impl Default for CoreTemplate {
    fn default() -> Self {
        CoreTemplate::ppc_core()
    }
}

/// Assembles `n_cores` instances of `template` into a grid with a shared
/// L2 bank below, returning the complete floorplan.
pub(crate) fn assemble_cmp(template: &CoreTemplate, n_cores: usize) -> Floorplan {
    let cols = if n_cores == 1 { 1 } else { 2 };
    let rows = n_cores.div_ceil(cols);
    let chip_width = cols as f64 * template.core_width;
    let l2_height = 0.5 * rows as f64 * template.core_height;
    let chip_height = rows as f64 * template.core_height + l2_height;

    let mut blocks = Vec::with_capacity(n_cores * template.units.len() + 1);
    blocks.push(Block::new(
        "l2",
        UnitKind::L2,
        None,
        0.0,
        0.0,
        chip_width,
        l2_height,
    ));
    for core in 0..n_cores {
        let col = core % cols;
        let row = core / cols;
        let ox = col as f64 * template.core_width;
        let oy = l2_height + row as f64 * template.core_height;
        blocks.extend(template.instantiate(core, ox, oy));
    }
    Floorplan::from_blocks(blocks, chip_width, chip_height)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppc_core_covers_the_full_core_box() {
        let t = CoreTemplate::ppc_core();
        let area: f64 = t.units().iter().map(|&(_, _, _, w, h)| w * h).sum();
        assert!((area - 1.0).abs() < 1e-9, "fractional area = {area}");
    }

    #[test]
    fn ppc_core_units_match_per_core_set() {
        let t = CoreTemplate::ppc_core();
        let mut kinds: Vec<_> = t.units().iter().map(|u| u.0).collect();
        kinds.sort();
        let mut expected = UnitKind::per_core().to_vec();
        expected.sort();
        assert_eq!(kinds, expected);
    }

    #[test]
    fn register_files_are_compact() {
        // The register files must be among the smallest blocks so that
        // equal-activity power concentrates into a hotspot.
        let t = CoreTemplate::ppc_core();
        let area_of = |k: UnitKind| -> f64 {
            t.units()
                .iter()
                .find(|u| u.0 == k)
                .map(|&(_, _, _, w, h)| w * h)
                .unwrap()
        };
        assert!(area_of(UnitKind::IntRegFile) < area_of(UnitKind::Fxu));
        assert!(area_of(UnitKind::IntRegFile) < area_of(UnitKind::Icache));
        assert!(area_of(UnitKind::FpRegFile) < area_of(UnitKind::Fpu));
    }

    #[test]
    fn instantiate_offsets_blocks() {
        let t = CoreTemplate::ppc_core();
        let blocks = t.instantiate(3, 1e-2, 2e-2);
        assert_eq!(blocks.len(), 13);
        for b in &blocks {
            assert_eq!(b.core(), Some(3));
            assert!(b.left() >= 1e-2 - 1e-12);
            assert!(b.bottom() >= 2e-2 - 1e-12);
            assert!(b.name().starts_with("core3_"));
        }
    }

    #[test]
    #[should_panic(expected = "outside the core box")]
    fn template_rejects_out_of_box_units() {
        CoreTemplate::new(vec![(UnitKind::Fxu, 0.9, 0.9, 0.2, 0.2)], 1e-3, 1e-3);
    }

    #[test]
    fn odd_core_counts_assemble() {
        for n in [3, 5, 7] {
            let fp = assemble_cmp(&CoreTemplate::ppc_core(), n);
            // Geometry is sound even with a partially-filled top row
            // (per-core structure checks still pass).
            fp.validate().unwrap();
            assert_eq!(fp.cores(), n);
        }
    }

    #[test]
    fn default_template_is_ppc_core() {
        assert_eq!(CoreTemplate::default(), CoreTemplate::ppc_core());
    }
}
