//! Chip floorplans for multicore thermal simulation.
//!
//! A [`Floorplan`] is a set of rectangular [`Block`]s placed on a die,
//! each tagged with a microarchitectural [`UnitKind`] and (for per-core
//! units) the index of the core it belongs to. The thermal model consumes
//! the geometry: block areas set thermal capacitances, shared edges set
//! lateral thermal conductances, and the chip outline sizes the package.
//!
//! The layout mirrors the ISCA'06 multicore-DTM study: a PowerPC-class
//! out-of-order core replicated `n` times, with a shared L2 cache bank
//! occupying the remainder of the die ([`Floorplan::ppc_cmp`]).
//!
//! # Examples
//!
//! ```
//! use dtm_floorplan::{Floorplan, UnitKind};
//!
//! let fp = Floorplan::ppc_cmp(4);
//! fp.validate().unwrap();
//! assert_eq!(fp.cores(), 4);
//! // Every core has exactly one integer register file.
//! let int_rf = fp.block_of(0, UnitKind::IntRegFile).unwrap();
//! assert!(fp.blocks()[int_rf].area() > 0.0);
//! ```

mod block;
mod layout;

pub use block::{Block, UnitKind};
pub use layout::CoreTemplate;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced when a floorplan fails geometric validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FloorplanError {
    /// A block has a non-positive width or height.
    DegenerateBlock { name: String },
    /// Two blocks overlap by more than the tolerance.
    Overlap { a: String, b: String },
    /// A block extends outside the chip outline.
    OutOfBounds { name: String },
    /// The floorplan contains no blocks.
    Empty,
    /// A per-core unit appears more than once (or not at all) for a core.
    BadCoreStructure { core: usize, kind: UnitKind },
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::DegenerateBlock { name } => {
                write!(f, "block `{name}` has non-positive dimensions")
            }
            FloorplanError::Overlap { a, b } => write!(f, "blocks `{a}` and `{b}` overlap"),
            FloorplanError::OutOfBounds { name } => {
                write!(f, "block `{name}` extends outside the chip outline")
            }
            FloorplanError::Empty => write!(f, "floorplan contains no blocks"),
            FloorplanError::BadCoreStructure { core, kind } => {
                write!(f, "core {core} does not have exactly one `{kind}` block")
            }
        }
    }
}

impl std::error::Error for FloorplanError {}

/// A chip floorplan: a list of rectangular blocks inside a chip outline.
///
/// Coordinates and dimensions are in meters. The chip outline's lower-left
/// corner is at the origin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    blocks: Vec<Block>,
    chip_width: f64,
    chip_height: f64,
    cores: usize,
}

impl Floorplan {
    /// Builds a floorplan from explicit blocks and a chip outline.
    ///
    /// `cores` is the number of distinct cores referenced by the blocks'
    /// `core` fields. Call [`Floorplan::validate`] to check geometry.
    pub fn from_blocks(blocks: Vec<Block>, chip_width: f64, chip_height: f64) -> Self {
        let cores = blocks
            .iter()
            .filter_map(|b| b.core())
            .map(|c| c + 1)
            .max()
            .unwrap_or(0);
        Floorplan {
            blocks,
            chip_width,
            chip_height,
            cores,
        }
    }

    /// The PowerPC-class CMP floorplan used throughout the study: `n_cores`
    /// identical out-of-order cores plus a shared L2 cache bank.
    ///
    /// Cores are arranged in a grid (2 columns for ≥2 cores) above an L2
    /// bank that spans the die width. Each core instantiates
    /// [`CoreTemplate::ppc_core`].
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero.
    pub fn ppc_cmp(n_cores: usize) -> Self {
        assert!(n_cores > 0, "a CMP needs at least one core");
        let template = CoreTemplate::ppc_core();
        layout::assemble_cmp(&template, n_cores)
    }

    /// All blocks in the floorplan, in index order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the floorplan has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Chip outline width in meters.
    pub fn chip_width(&self) -> f64 {
        self.chip_width
    }

    /// Chip outline height in meters.
    pub fn chip_height(&self) -> f64 {
        self.chip_height
    }

    /// Total chip area in m².
    pub fn chip_area(&self) -> f64 {
        self.chip_width * self.chip_height
    }

    /// Index of the unique block of `kind` belonging to `core`, if any.
    pub fn block_of(&self, core: usize, kind: UnitKind) -> Option<usize> {
        self.blocks
            .iter()
            .position(|b| b.core() == Some(core) && b.kind() == kind)
    }

    /// Indices of all blocks of a given kind (across cores and shared).
    pub fn blocks_of_kind(&self, kind: UnitKind) -> Vec<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.kind() == kind)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all blocks belonging to `core`.
    pub fn core_blocks(&self, core: usize) -> Vec<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.core() == Some(core))
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of a block by its unique name.
    pub fn block_by_name(&self, name: &str) -> Option<usize> {
        self.blocks.iter().position(|b| b.name() == name)
    }

    /// Length (m) of the edge shared by blocks `a` and `b`; zero if they
    /// are not adjacent.
    ///
    /// Two blocks share an edge when they abut (within `tol`) along one
    /// axis and their projections on the other axis overlap.
    pub fn shared_edge(&self, a: usize, b: usize) -> f64 {
        let (p, q) = (&self.blocks[a], &self.blocks[b]);
        let tol = 1e-9;
        // Vertical shared edge: p's right touches q's left (or vice versa).
        let vertical = if (p.right() - q.left()).abs() < tol || (q.right() - p.left()).abs() < tol {
            overlap_1d(p.bottom(), p.top(), q.bottom(), q.top())
        } else {
            0.0
        };
        // Horizontal shared edge.
        let horizontal = if (p.top() - q.bottom()).abs() < tol || (q.top() - p.bottom()).abs() < tol
        {
            overlap_1d(p.left(), p.right(), q.left(), q.right())
        } else {
            0.0
        };
        vertical.max(horizontal)
    }

    /// All adjacent pairs `(i, j, shared_edge_length)` with `i < j`.
    pub fn adjacency(&self) -> Vec<(usize, usize, f64)> {
        let mut pairs = Vec::new();
        for i in 0..self.blocks.len() {
            for j in (i + 1)..self.blocks.len() {
                let e = self.shared_edge(i, j);
                if e > 0.0 {
                    pairs.push((i, j, e));
                }
            }
        }
        pairs
    }

    /// Euclidean distance between the centers of two blocks.
    pub fn center_distance(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = self.blocks[a].center();
        let (bx, by) = self.blocks[b].center();
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Checks geometric soundness: positive dimensions, no overlaps, all
    /// blocks inside the outline, and per-core unit uniqueness.
    ///
    /// # Errors
    ///
    /// Returns the first violation found as a [`FloorplanError`].
    pub fn validate(&self) -> Result<(), FloorplanError> {
        if self.blocks.is_empty() {
            return Err(FloorplanError::Empty);
        }
        let tol = 1e-9;
        for b in &self.blocks {
            if b.width() <= 0.0 || b.height() <= 0.0 {
                return Err(FloorplanError::DegenerateBlock {
                    name: b.name().to_string(),
                });
            }
            if b.left() < -tol
                || b.bottom() < -tol
                || b.right() > self.chip_width + tol
                || b.top() > self.chip_height + tol
            {
                return Err(FloorplanError::OutOfBounds {
                    name: b.name().to_string(),
                });
            }
        }
        for i in 0..self.blocks.len() {
            for j in (i + 1)..self.blocks.len() {
                let (p, q) = (&self.blocks[i], &self.blocks[j]);
                let ox = overlap_1d(p.left(), p.right(), q.left(), q.right());
                let oy = overlap_1d(p.bottom(), p.top(), q.bottom(), q.top());
                if ox > tol && oy > tol {
                    return Err(FloorplanError::Overlap {
                        a: p.name().to_string(),
                        b: q.name().to_string(),
                    });
                }
            }
        }
        for core in 0..self.cores {
            for kind in UnitKind::per_core() {
                let count = self
                    .blocks
                    .iter()
                    .filter(|b| b.core() == Some(core) && b.kind() == *kind)
                    .count();
                if count != 1 {
                    return Err(FloorplanError::BadCoreStructure { core, kind: *kind });
                }
            }
        }
        Ok(())
    }
}

fn overlap_1d(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppc_cmp_validates_for_common_core_counts() {
        for n in [1, 2, 4, 8] {
            let fp = Floorplan::ppc_cmp(n);
            fp.validate().unwrap_or_else(|e| panic!("{n} cores: {e}"));
            assert_eq!(fp.cores(), n);
        }
    }

    #[test]
    fn four_core_plan_has_expected_block_count() {
        let fp = Floorplan::ppc_cmp(4);
        // 13 per-core units × 4 cores + 1 shared L2.
        assert_eq!(fp.len(), 13 * 4 + 1);
    }

    #[test]
    fn every_core_has_both_register_files() {
        let fp = Floorplan::ppc_cmp(4);
        for core in 0..4 {
            assert!(fp.block_of(core, UnitKind::IntRegFile).is_some());
            assert!(fp.block_of(core, UnitKind::FpRegFile).is_some());
        }
    }

    #[test]
    fn l2_is_shared_not_per_core() {
        let fp = Floorplan::ppc_cmp(4);
        let l2s = fp.blocks_of_kind(UnitKind::L2);
        assert_eq!(l2s.len(), 1);
        assert_eq!(fp.blocks()[l2s[0]].core(), None);
    }

    #[test]
    fn block_areas_sum_to_less_than_chip_area() {
        let fp = Floorplan::ppc_cmp(4);
        let sum: f64 = fp.blocks().iter().map(|b| b.area()).sum();
        assert!(sum <= fp.chip_area() * (1.0 + 1e-9));
        // And the layout should be reasonably dense (no huge dead space).
        assert!(sum >= fp.chip_area() * 0.95, "layout too sparse: {sum}");
    }

    #[test]
    fn shared_edge_is_symmetric() {
        let fp = Floorplan::ppc_cmp(4);
        for (i, j, e) in fp.adjacency() {
            assert!(e > 0.0);
            assert!((fp.shared_edge(j, i) - e).abs() < 1e-12);
        }
    }

    #[test]
    fn adjacency_is_nonempty_and_contains_intra_core_neighbors() {
        let fp = Floorplan::ppc_cmp(4);
        let adj = fp.adjacency();
        assert!(!adj.is_empty());
        // The integer register file must touch at least one other block.
        let rf = fp.block_of(0, UnitKind::IntRegFile).unwrap();
        assert!(adj.iter().any(|&(i, j, _)| i == rf || j == rf));
    }

    #[test]
    fn validate_rejects_overlap() {
        let blocks = vec![
            Block::new("a", UnitKind::Fxu, None, 0.0, 0.0, 1e-3, 1e-3),
            Block::new("b", UnitKind::Fpu, None, 0.5e-3, 0.5e-3, 1e-3, 1e-3),
        ];
        let fp = Floorplan::from_blocks(blocks, 2e-3, 2e-3);
        assert!(matches!(fp.validate(), Err(FloorplanError::Overlap { .. })));
    }

    #[test]
    fn validate_rejects_out_of_bounds() {
        let blocks = vec![Block::new("a", UnitKind::Fxu, None, 0.0, 0.0, 3e-3, 1e-3)];
        let fp = Floorplan::from_blocks(blocks, 2e-3, 2e-3);
        assert!(matches!(
            fp.validate(),
            Err(FloorplanError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn validate_rejects_degenerate_block() {
        let blocks = vec![Block::new("a", UnitKind::Fxu, None, 0.0, 0.0, 0.0, 1e-3)];
        let fp = Floorplan::from_blocks(blocks, 2e-3, 2e-3);
        assert!(matches!(
            fp.validate(),
            Err(FloorplanError::DegenerateBlock { .. })
        ));
    }

    #[test]
    fn validate_rejects_empty() {
        let fp = Floorplan::from_blocks(vec![], 1e-3, 1e-3);
        assert_eq!(fp.validate(), Err(FloorplanError::Empty));
    }

    #[test]
    fn touching_blocks_do_not_count_as_overlapping() {
        let blocks = vec![
            Block::new("a", UnitKind::Fxu, None, 0.0, 0.0, 1e-3, 1e-3),
            Block::new("b", UnitKind::Fpu, None, 1e-3, 0.0, 1e-3, 1e-3),
        ];
        let fp = Floorplan::from_blocks(blocks, 2e-3, 1e-3);
        assert!(fp.validate().is_ok());
        assert!((fp.shared_edge(0, 1) - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn non_adjacent_blocks_share_no_edge() {
        let blocks = vec![
            Block::new("a", UnitKind::Fxu, None, 0.0, 0.0, 1e-3, 1e-3),
            Block::new("b", UnitKind::Fpu, None, 1.5e-3, 0.0, 0.5e-3, 1e-3),
        ];
        let fp = Floorplan::from_blocks(blocks, 2e-3, 1e-3);
        assert_eq!(fp.shared_edge(0, 1), 0.0);
    }

    #[test]
    fn corner_touching_blocks_share_no_edge() {
        let blocks = vec![
            Block::new("a", UnitKind::Fxu, None, 0.0, 0.0, 1e-3, 1e-3),
            Block::new("b", UnitKind::Fpu, None, 1e-3, 1e-3, 1e-3, 1e-3),
        ];
        let fp = Floorplan::from_blocks(blocks, 2e-3, 2e-3);
        assert_eq!(fp.shared_edge(0, 1), 0.0);
    }

    #[test]
    fn block_by_name_round_trips() {
        let fp = Floorplan::ppc_cmp(2);
        for (i, b) in fp.blocks().iter().enumerate() {
            assert_eq!(fp.block_by_name(b.name()), Some(i));
        }
        assert_eq!(fp.block_by_name("no-such-block"), None);
    }

    #[test]
    fn center_distance_positive_for_distinct_blocks() {
        let fp = Floorplan::ppc_cmp(4);
        for (i, j, _) in fp.adjacency() {
            assert!(fp.center_distance(i, j) > 0.0);
        }
    }

    #[test]
    fn clone_preserves_equality() {
        let fp = Floorplan::ppc_cmp(4);
        let cloned = fp.clone();
        assert_eq!(fp, cloned);
    }
}
