//! Property-based tests for the power model.

use dtm_floorplan::{Floorplan, UnitKind};
use dtm_microarch::ActivityCounters;
use dtm_power::{leakage_reference, scaling, CorePowerSample, PowerModel, PowerTrace};
use proptest::prelude::*;

prop_compose! {
    fn arb_counters()(ipc in 0.1f64..4.0, seed in 1u64..1000) -> ActivityCounters {
        let cycles = 100_000u64;
        let instr = (ipc * cycles as f64) as u64;
        let mix = |f: f64| ((instr as f64) * f * ((seed % 7 + 1) as f64 / 4.0)) as u64;
        ActivityCounters {
            cycles,
            instructions: instr,
            fetches: instr,
            rename_ops: instr,
            bpred_lookups: mix(0.15),
            mispredicts: mix(0.01),
            icache_accesses: instr / 32,
            dcache_accesses: mix(0.3),
            issue_int: instr / 2,
            issue_fp: instr - instr / 2,
            int_rf_accesses: mix(2.0),
            fp_rf_accesses: mix(1.0),
            fxu_ops: mix(0.5),
            fpu_ops: mix(0.3),
            lsu_ops: mix(0.3),
            bxu_ops: mix(0.1),
            l2_accesses: mix(0.01),
            mem_accesses: mix(0.001),
        }
    }
}

proptest! {
    /// Converted power is finite and at least the idle floor for any
    /// activity pattern.
    #[test]
    fn power_has_idle_floor(c in arb_counters()) {
        let model = PowerModel::default_90nm(3.6e9);
        let s = model.convert(&c);
        let idle: f64 = UnitKind::per_core()
            .iter()
            .map(|&k| model.table().get(k).idle_power)
            .sum();
        prop_assert!(s.core_power().is_finite());
        prop_assert!(s.core_power() >= idle - 1e-9);
        prop_assert!(s.l2 >= 0.0);
    }

    /// Power is monotone in activity: doubling every counter (same
    /// cycles) cannot reduce any unit's power.
    #[test]
    fn power_monotone_in_activity(c in arb_counters()) {
        let model = PowerModel::default_90nm(3.6e9);
        let lo = model.convert(&c);
        // scaled(2) doubles cycles too; keep the original cycle count so
        // the activity *rate* doubles.
        let mut doubled = c.scaled(2);
        doubled.cycles = c.cycles;
        let hi = model.convert(&doubled);
        for (a, b) in lo.units.iter().zip(&hi.units) {
            prop_assert!(b >= a);
        }
    }

    /// The cubic DVFS law is monotone and bounded on [0, 1].
    #[test]
    fn dvfs_scaling_laws(s1 in 0.0f64..1.0, s2 in 0.0f64..1.0) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(scaling::dynamic(lo) <= scaling::dynamic(hi));
        prop_assert!(scaling::dynamic(hi) <= 1.0);
        prop_assert!(scaling::rate(lo) <= scaling::rate(hi));
    }

    /// Trace wrap-around indexing is total: any index maps to a stored
    /// sample, and means are finite.
    #[test]
    fn trace_indexing_total(len in 1usize..50, idx in 0u64..10_000) {
        let samples = vec![CorePowerSample::zero(); len];
        let t = PowerTrace::new("p", 28e-6, samples);
        let _ = t.sample(idx); // must not panic
        prop_assert!(t.mean_core_power().is_finite());
        prop_assert!((t.duration() - 28e-6 * len as f64).abs() < 1e-12);
    }

    /// Leakage references scale linearly with density.
    #[test]
    fn leakage_reference_linear(d1 in 1e3f64..1e5, k in 1.1f64..5.0) {
        let fp = Floorplan::ppc_cmp(2);
        let a = leakage_reference(&fp, d1, d1 / 2.0);
        let b = leakage_reference(&fp, d1 * k, d1 * k / 2.0);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((y - x * k).abs() < 1e-9 * y.abs().max(1.0));
        }
    }
}
