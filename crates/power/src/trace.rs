//! Power traces: per-28 µs samples of unit power plus the performance
//! counters the migration policies need.

use dtm_floorplan::UnitKind;
use serde::{Deserialize, Serialize};

/// Number of per-core units (the length of [`CorePowerSample::units`]).
pub const N_CORE_UNITS: usize = 13;

/// One trace sample: per-unit dynamic power at nominal V/f over one
/// 100 000-cycle interval, plus the counters the OS-level policies read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorePowerSample {
    /// Dynamic power of each per-core unit (W at nominal V/f), indexed by
    /// [`UnitKind::per_core`] order.
    pub units: [f64; N_CORE_UNITS],
    /// This thread's share of L2 dynamic power (W at nominal V/f).
    pub l2: f64,
    /// Instructions retired in the interval.
    pub instructions: u64,
    /// Integer register-file accesses per cycle (counter-based migration
    /// proxy).
    pub int_rf_per_cycle: f64,
    /// FP register-file accesses per cycle.
    pub fp_rf_per_cycle: f64,
}

impl CorePowerSample {
    /// A zero sample (stopped core).
    pub fn zero() -> Self {
        CorePowerSample {
            units: [0.0; N_CORE_UNITS],
            l2: 0.0,
            instructions: 0,
            int_rf_per_cycle: 0.0,
            fp_rf_per_cycle: 0.0,
        }
    }

    /// Total core dynamic power of the sample (W, excluding L2).
    pub fn core_power(&self) -> f64 {
        self.units.iter().sum()
    }

    /// Power of one unit kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a per-core unit.
    pub fn unit_power(&self, kind: UnitKind) -> f64 {
        let idx = UnitKind::per_core()
            .iter()
            .position(|&k| k == kind)
            .unwrap_or_else(|| panic!("`{kind}` is not a per-core unit"));
        self.units[idx]
    }
}

/// A benchmark's power trace: a looping sequence of samples at a fixed
/// period (27.78 µs in the study).
///
/// "When a power trace for a particular benchmark is completed before the
/// end of the simulation, that trace is restarted at the beginning" —
/// [`PowerTrace::sample`] implements exactly that wrap-around.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    name: String,
    dt: f64,
    samples: Vec<CorePowerSample>,
}

impl PowerTrace {
    /// Creates a trace.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `dt` is not positive.
    pub fn new(name: impl Into<String>, dt: f64, samples: Vec<CorePowerSample>) -> Self {
        assert!(
            !samples.is_empty(),
            "a power trace needs at least one sample"
        );
        assert!(dt.is_finite() && dt > 0.0, "sample period must be positive");
        PowerTrace {
            name: name.into(),
            dt,
            samples,
        }
    }

    /// Benchmark name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sample period (s).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Number of samples before the trace loops.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty (never true for constructed traces).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sample at (wrapping) position `idx`.
    pub fn sample(&self, idx: u64) -> &CorePowerSample {
        &self.samples[(idx % self.samples.len() as u64) as usize]
    }

    /// Trace duration before looping (s).
    pub fn duration(&self) -> f64 {
        self.dt * self.samples.len() as f64
    }

    /// Mean core dynamic power over one full loop (W).
    pub fn mean_core_power(&self) -> f64 {
        self.samples.iter().map(|s| s.core_power()).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean IPC over one full loop.
    pub fn mean_ipc(&self) -> f64 {
        let instr: u64 = self.samples.iter().map(|s| s.instructions).sum();
        instr as f64 / (self.samples.len() as f64 * 1e5)
    }

    /// Mean power of one unit over a loop (W).
    pub fn mean_unit_power(&self, kind: UnitKind) -> f64 {
        self.samples.iter().map(|s| s.unit_power(kind)).sum::<f64>() / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(p: f64) -> CorePowerSample {
        let mut s = CorePowerSample::zero();
        s.units[0] = p;
        s.instructions = 1000;
        s
    }

    #[test]
    fn trace_wraps_around() {
        let t = PowerTrace::new("t", 28e-6, vec![sample(1.0), sample(2.0), sample(3.0)]);
        assert_eq!(t.sample(0).units[0], 1.0);
        assert_eq!(t.sample(3).units[0], 1.0);
        assert_eq!(t.sample(7).units[0], 2.0);
    }

    #[test]
    fn mean_power_averages() {
        let t = PowerTrace::new("t", 28e-6, vec![sample(1.0), sample(3.0)]);
        assert!((t.mean_core_power() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duration_multiplies() {
        let t = PowerTrace::new("t", 1e-3, vec![sample(0.0); 50]);
        assert!((t.duration() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn mean_ipc_uses_sample_cycles() {
        let t = PowerTrace::new("t", 28e-6, vec![sample(0.0); 4]);
        assert!((t.mean_ipc() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn unit_power_lookup() {
        let mut s = CorePowerSample::zero();
        s.units[7] = 2.5; // IntRegFile is index 7 in per_core order
        assert_eq!(s.unit_power(dtm_floorplan::UnitKind::IntRegFile), 2.5);
    }

    #[test]
    #[should_panic(expected = "per-core unit")]
    fn l2_is_not_a_core_unit() {
        CorePowerSample::zero().unit_power(dtm_floorplan::UnitKind::L2);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_rejected() {
        PowerTrace::new("t", 28e-6, vec![]);
    }

    #[test]
    fn core_power_sums_units() {
        let mut s = CorePowerSample::zero();
        s.units = [1.0; N_CORE_UNITS];
        assert!((s.core_power() - 13.0).abs() < 1e-12);
    }
}
