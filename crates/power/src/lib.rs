//! PowerTimer-style activity-based power modeling.
//!
//! Converts the microarchitectural activity counters produced by
//! `dtm-microarch` into per-unit dynamic power at nominal voltage and
//! frequency, packages them into looping [`PowerTrace`]s (one 27.78 µs
//! sample per 100 000 cycles, exactly the study's trace format), and
//! provides the DVFS [`scaling`] laws (`P ∝ s³` with `V ∝ f`) and
//! floorplan-proportional leakage references used by the thermal loop.
//!
//! # Examples
//!
//! ```
//! use dtm_microarch::{CoreConfig, CoreSim, StreamProfile};
//! use dtm_power::{PowerModel, PowerTrace};
//!
//! let model = PowerModel::default_90nm(3.6e9);
//! let mut core = CoreSim::new(CoreConfig::default(), StreamProfile::generic_fp(), 1);
//! let dt = CoreConfig::default().sample_period();
//! let samples: Vec<_> = (0..16).map(|_| model.convert(&core.run_sample(5))).collect();
//! let trace = PowerTrace::new("demo", dt, samples);
//! assert!(trace.mean_core_power() > 0.0);
//! ```

mod energy;
mod model;
mod serialize;
mod trace;

pub use energy::{scaling, EnergyTable, UnitEnergy};
pub use model::{leakage_reference, PowerModel, DEFAULT_LOGIC_LEAKAGE, DEFAULT_SRAM_LEAKAGE};
pub use serialize::TraceCodecError;
pub use trace::{CorePowerSample, PowerTrace, N_CORE_UNITS};
