//! Per-unit energy calibration.
//!
//! PowerTimer derives unit power from empirical circuit-level models; we
//! use the same structure — an energy per access plus an idle
//! (conditional-clock) power per unit — with constants calibrated so that
//! a fully-active core at nominal voltage and frequency dissipates a
//! realistic budget, with the register files as the dominant power
//! densities (the study's hotspots).

use dtm_floorplan::UnitKind;
use serde::{Deserialize, Serialize};

/// Access energy and idle power for one unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitEnergy {
    /// Energy per access at nominal voltage/frequency (J).
    pub energy_per_access: f64,
    /// Clock/idle power at nominal voltage/frequency while the core is
    /// running (W); gated to (almost) zero when the core is stopped.
    pub idle_power: f64,
}

/// Calibration table mapping each per-core unit (and the L2) to its
/// energy model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    entries: Vec<(UnitKind, UnitEnergy)>,
}

const NJ: f64 = 1e-9;

impl EnergyTable {
    /// The default 90 nm calibration.
    ///
    /// At a typical hot integer workload (IPC ≈ 2) this yields ≈ 9–10 W
    /// of per-core dynamic power with ≈ 2.3 W in the integer register
    /// file — the highest power density on the die given the compact RF
    /// blocks of the floorplan.
    pub fn default_90nm() -> Self {
        use UnitKind::*;
        EnergyTable {
            entries: vec![
                (
                    Fetch,
                    UnitEnergy {
                        energy_per_access: 0.05792 * NJ,
                        idle_power: 0.259,
                    },
                ),
                (
                    BranchPred,
                    UnitEnergy {
                        energy_per_access: 0.4739 * NJ,
                        idle_power: 0.216,
                    },
                ),
                (
                    Icache,
                    UnitEnergy {
                        energy_per_access: 1.685 * NJ,
                        idle_power: 0.538,
                    },
                ),
                (
                    Dcache,
                    UnitEnergy {
                        energy_per_access: 0.4423 * NJ,
                        idle_power: 0.538,
                    },
                ),
                (
                    Rename,
                    UnitEnergy {
                        energy_per_access: 0.07901 * NJ,
                        idle_power: 0.259,
                    },
                ),
                (
                    IssueInt,
                    UnitEnergy {
                        energy_per_access: 0.1158 * NJ,
                        idle_power: 0.324,
                    },
                ),
                (
                    IssueFp,
                    UnitEnergy {
                        energy_per_access: 0.1474 * NJ,
                        idle_power: 0.173,
                    },
                ),
                (
                    IntRegFile,
                    UnitEnergy {
                        energy_per_access: 0.29 * NJ,
                        idle_power: 0.25,
                    },
                ),
                (
                    FpRegFile,
                    UnitEnergy {
                        energy_per_access: 0.63 * NJ,
                        idle_power: 0.096,
                    },
                ),
                (
                    Fxu,
                    UnitEnergy {
                        energy_per_access: 0.1685 * NJ,
                        idle_power: 0.324,
                    },
                ),
                (
                    Fpu,
                    UnitEnergy {
                        energy_per_access: 0.4423 * NJ,
                        idle_power: 0.389,
                    },
                ),
                (
                    Lsu,
                    UnitEnergy {
                        energy_per_access: 0.1895 * NJ,
                        idle_power: 0.302,
                    },
                ),
                (
                    Bxu,
                    UnitEnergy {
                        energy_per_access: 0.09477 * NJ,
                        idle_power: 0.13,
                    },
                ),
                (
                    L2,
                    UnitEnergy {
                        energy_per_access: 3.58 * NJ,
                        idle_power: 1.3,
                    },
                ),
            ],
        }
    }

    /// The energy model for a unit kind.
    ///
    /// # Panics
    ///
    /// Panics if the kind is missing from the table.
    pub fn get(&self, kind: UnitKind) -> UnitEnergy {
        self.entries
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, e)| *e)
            .unwrap_or_else(|| panic!("no energy entry for unit `{kind}`"))
    }

    /// Overrides one unit's energy model (for ablations).
    pub fn set(&mut self, kind: UnitKind, energy: UnitEnergy) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == kind) {
            slot.1 = energy;
        } else {
            self.entries.push((kind, energy));
        }
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        EnergyTable::default_90nm()
    }
}

/// DVFS scaling laws for the nominal-voltage power numbers.
///
/// With supply voltage scaled linearly with frequency (`V ∝ f`), dynamic
/// power at frequency-scale `s` over one *wall-clock* interval is
/// `P ∝ f·V² = s³·P_nominal` for the same per-cycle activity rates; this
/// is the cubic relation the paper's migration policies use to normalize
/// counter and sensor data collected at scaled frequencies.
pub mod scaling {
    /// Dynamic-power multiplier at frequency scale `s`.
    pub fn dynamic(s: f64) -> f64 {
        s * s * s
    }

    /// Activity-rate multiplier at frequency scale `s` (events per
    /// wall-clock second scale linearly).
    pub fn rate(s: f64) -> f64 {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_all_units() {
        let t = EnergyTable::default_90nm();
        for &k in UnitKind::all() {
            let e = t.get(k);
            assert!(e.energy_per_access > 0.0);
            assert!(e.idle_power >= 0.0);
        }
    }

    #[test]
    fn set_overrides_entry() {
        let mut t = EnergyTable::default_90nm();
        let new = UnitEnergy {
            energy_per_access: 1.0,
            idle_power: 4.32,
        };
        t.set(UnitKind::Fxu, new);
        assert_eq!(t.get(UnitKind::Fxu), new);
    }

    #[test]
    fn cubic_scaling_endpoints() {
        assert_eq!(scaling::dynamic(1.0), 1.0);
        assert!((scaling::dynamic(0.5) - 0.125).abs() < 1e-15);
        assert_eq!(scaling::dynamic(0.0), 0.0);
    }

    #[test]
    fn rate_scaling_is_linear() {
        assert_eq!(scaling::rate(0.2), 0.2);
        assert_eq!(scaling::rate(1.0), 1.0);
    }
}
