//! Compact binary serialization for power traces.
//!
//! Trace generation is deterministic but costs seconds per benchmark;
//! experiment drivers cache generated traces on disk. The format is a
//! small self-describing little-endian layout (no external codec
//! dependency):
//!
//! ```text
//!   magic "DTMTRC01" | name_len u32 | name bytes | dt f64 | n u32 |
//!   n × { 13×f64 units | f64 l2 | u64 instructions |
//!         f64 int_rf_per_cycle | f64 fp_rf_per_cycle }
//! ```

use crate::trace::{CorePowerSample, PowerTrace, N_CORE_UNITS};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"DTMTRC01";

/// Errors from trace (de)serialization.
#[derive(Debug)]
pub enum TraceCodecError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a trace file (bad magic) or is structurally
    /// corrupt.
    Format(String),
}

impl std::fmt::Display for TraceCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceCodecError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceCodecError::Format(msg) => write!(f, "malformed trace file: {msg}"),
        }
    }
}

impl std::error::Error for TraceCodecError {}

impl From<io::Error> for TraceCodecError {
    fn from(e: io::Error) -> Self {
        TraceCodecError::Io(e)
    }
}

fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

impl PowerTrace {
    /// Writes the trace in the compact binary format. A `&mut` reference
    /// may be passed for any `Write` implementor.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), TraceCodecError> {
        w.write_all(MAGIC)?;
        let name = self.name().as_bytes();
        write_u32(&mut w, name.len() as u32)?;
        w.write_all(name)?;
        write_f64(&mut w, self.dt())?;
        write_u32(&mut w, self.len() as u32)?;
        for i in 0..self.len() {
            let s = self.sample(i as u64);
            for &u in &s.units {
                write_f64(&mut w, u)?;
            }
            write_f64(&mut w, s.l2)?;
            write_u64(&mut w, s.instructions)?;
            write_f64(&mut w, s.int_rf_per_cycle)?;
            write_f64(&mut w, s.fp_rf_per_cycle)?;
        }
        Ok(())
    }

    /// Reads a trace previously written by [`PowerTrace::write_to`].
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a malformed/truncated file.
    pub fn read_from<R: Read>(mut r: R) -> Result<PowerTrace, TraceCodecError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceCodecError::Format("bad magic".into()));
        }
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 4096 {
            return Err(TraceCodecError::Format(format!(
                "implausible name length {name_len}"
            )));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| TraceCodecError::Format("name is not UTF-8".into()))?;
        let dt = read_f64(&mut r)?;
        if !(dt.is_finite() && dt > 0.0) {
            return Err(TraceCodecError::Format(format!("bad dt {dt}")));
        }
        let n = read_u32(&mut r)? as usize;
        if n == 0 || n > 100_000_000 {
            return Err(TraceCodecError::Format(format!("implausible length {n}")));
        }
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let mut s = CorePowerSample::zero();
            for u in 0..N_CORE_UNITS {
                s.units[u] = read_f64(&mut r)?;
            }
            s.l2 = read_f64(&mut r)?;
            s.instructions = read_u64(&mut r)?;
            s.int_rf_per_cycle = read_f64(&mut r)?;
            s.fp_rf_per_cycle = read_f64(&mut r)?;
            samples.push(s);
        }
        Ok(PowerTrace::new(name, dt, samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> PowerTrace {
        let mut samples = Vec::new();
        for i in 0..5 {
            let mut s = CorePowerSample::zero();
            for (u, slot) in s.units.iter_mut().enumerate() {
                *slot = 0.1 * (i * 13 + u) as f64;
            }
            s.l2 = 0.05 * i as f64;
            s.instructions = 1000 + i as u64;
            s.int_rf_per_cycle = 2.0 + i as f64;
            s.fp_rf_per_cycle = 1.0 + i as f64;
            samples.push(s);
        }
        PowerTrace::new("demo", 27.78e-6, samples)
    }

    #[test]
    fn round_trip_is_lossless() {
        let t = demo_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = PowerTrace::read_from(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = PowerTrace::read_from(&b"NOTATRACE-----"[..]);
        assert!(matches!(err, Err(TraceCodecError::Format(_))));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let t = demo_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 7);
        assert!(PowerTrace::read_from(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(PowerTrace::read_from(&b""[..]).is_err());
    }

    #[test]
    fn format_size_is_as_specified() {
        let t = demo_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let expected = 8 + 4 + 4 + 8 + 4 + 5 * (13 * 8 + 8 + 8 + 8 + 8);
        assert_eq!(buf.len(), expected);
    }
}
