//! Activity → power conversion and leakage reference construction.

use crate::energy::EnergyTable;
use crate::trace::{CorePowerSample, N_CORE_UNITS};
use dtm_floorplan::{Floorplan, UnitKind};
use dtm_microarch::ActivityCounters;
use serde::{Deserialize, Serialize};

/// Converts per-interval activity counters into per-unit dynamic power at
/// nominal voltage and frequency.
///
/// # Examples
///
/// ```
/// use dtm_microarch::{CoreConfig, CoreSim, StreamProfile};
/// use dtm_power::PowerModel;
///
/// let model = PowerModel::default_90nm(3.6e9);
/// let mut core = CoreSim::new(CoreConfig::default(), StreamProfile::generic_int(), 1);
/// let sample = model.convert(&core.run_sample(5));
/// assert!(sample.core_power() > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    table: EnergyTable,
    clock_hz: f64,
}

impl PowerModel {
    /// Creates a model from an energy table and the nominal clock.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not positive.
    pub fn new(table: EnergyTable, clock_hz: f64) -> Self {
        assert!(
            clock_hz.is_finite() && clock_hz > 0.0,
            "clock must be positive"
        );
        PowerModel { table, clock_hz }
    }

    /// The default 90 nm calibration at the given clock.
    pub fn default_90nm(clock_hz: f64) -> Self {
        PowerModel::new(EnergyTable::default_90nm(), clock_hz)
    }

    /// The energy table.
    pub fn table(&self) -> &EnergyTable {
        &self.table
    }

    /// Nominal clock (Hz).
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Converts one interval of activity into a power sample.
    ///
    /// # Panics
    ///
    /// Panics if the interval covers zero cycles.
    pub fn convert(&self, c: &ActivityCounters) -> CorePowerSample {
        assert!(c.cycles > 0, "cannot convert an empty interval");
        let dt = c.cycles as f64 / self.clock_hz;
        let counts: [(UnitKind, u64); N_CORE_UNITS] = [
            (UnitKind::Fetch, c.fetches),
            (UnitKind::BranchPred, c.bpred_lookups),
            (UnitKind::Icache, c.icache_accesses),
            (UnitKind::Dcache, c.dcache_accesses),
            (UnitKind::Rename, c.rename_ops),
            (UnitKind::IssueInt, c.issue_int),
            (UnitKind::IssueFp, c.issue_fp),
            (UnitKind::IntRegFile, c.int_rf_accesses),
            (UnitKind::FpRegFile, c.fp_rf_accesses),
            (UnitKind::Fxu, c.fxu_ops),
            (UnitKind::Fpu, c.fpu_ops),
            (UnitKind::Lsu, c.lsu_ops),
            (UnitKind::Bxu, c.bxu_ops),
        ];
        debug_assert_eq!(
            counts.map(|(k, _)| k).as_slice(),
            UnitKind::per_core(),
            "count table must follow per-core unit order"
        );
        let mut units = [0.0; N_CORE_UNITS];
        for (i, (kind, count)) in counts.iter().enumerate() {
            let e = self.table.get(*kind);
            units[i] = *count as f64 * e.energy_per_access / dt + e.idle_power;
        }
        let l2e = self.table.get(UnitKind::L2);
        // Idle L2 power is accounted once chip-wide by the simulator;
        // a thread's trace carries only its access-driven share.
        let l2 = c.l2_accesses as f64 * l2e.energy_per_access / dt;

        CorePowerSample {
            units,
            l2,
            instructions: c.instructions,
            int_rf_per_cycle: c.int_rf_per_cycle(),
            fp_rf_per_cycle: c.fp_rf_per_cycle(),
        }
    }

    /// The L2 idle (clock + array standby, non-leakage) power (W),
    /// charged once chip-wide.
    pub fn l2_idle_power(&self) -> f64 {
        self.table.get(UnitKind::L2).idle_power
    }
}

/// Reference (45 °C) leakage power for every floorplan block,
/// proportional to area with separate densities for logic and SRAM
/// blocks.
///
/// Returns a vector indexed like `floorplan.blocks()`, suitable for
/// `dtm_thermal::LeakageModel` (the thermal crate's leakage model).
pub fn leakage_reference(
    floorplan: &Floorplan,
    logic_density_w_per_m2: f64,
    sram_density_w_per_m2: f64,
) -> Vec<f64> {
    floorplan
        .blocks()
        .iter()
        .map(|b| {
            let density = match b.kind() {
                UnitKind::Icache | UnitKind::Dcache | UnitKind::L2 => sram_density_w_per_m2,
                _ => logic_density_w_per_m2,
            };
            b.area() * density
        })
        .collect()
}

/// Default logic leakage density at 45 °C (W/m²) for the 90 nm node.
pub const DEFAULT_LOGIC_LEAKAGE: f64 = 6.0e4;
/// Default SRAM leakage density at 45 °C (W/m²).
pub const DEFAULT_SRAM_LEAKAGE: f64 = 2.5e4;

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_microarch::{CoreConfig, CoreSim, StreamProfile};

    fn warm_sample(profile: StreamProfile, seed: u64) -> CorePowerSample {
        let model = PowerModel::default_90nm(3.6e9);
        let mut core = CoreSim::new(CoreConfig::default(), profile, seed);
        core.run_cycles(400_000);
        model.convert(&core.run_sample(1))
    }

    #[test]
    fn int_workload_core_power_is_realistic() {
        let s = warm_sample(StreamProfile::generic_int(), 1);
        let p = s.core_power();
        assert!(p > 4.0 && p < 16.0, "core power = {p} W");
    }

    #[test]
    fn int_workload_hotspot_is_int_register_file() {
        let s = warm_sample(StreamProfile::generic_int(), 2);
        let int_rf = s.unit_power(UnitKind::IntRegFile);
        let fp_rf = s.unit_power(UnitKind::FpRegFile);
        assert!(int_rf > 1.5 * fp_rf, "int {int_rf} vs fp {fp_rf}");
        // And the int RF should be among the top power units.
        let max = s.units.iter().cloned().fold(0.0f64, f64::max);
        assert!(int_rf > 0.6 * max);
    }

    #[test]
    fn fp_workload_heats_fp_register_file() {
        let s = warm_sample(StreamProfile::generic_fp(), 3);
        let int_rf = s.unit_power(UnitKind::IntRegFile);
        let fp_rf = s.unit_power(UnitKind::FpRegFile);
        assert!(fp_rf > int_rf, "fp {fp_rf} vs int {int_rf}");
    }

    #[test]
    fn idle_counters_give_idle_power_only() {
        let model = PowerModel::default_90nm(3.6e9);
        let c = ActivityCounters {
            cycles: 100_000,
            ..Default::default()
        };
        let s = model.convert(&c);
        let expected: f64 = UnitKind::per_core()
            .iter()
            .map(|&k| model.table().get(k).idle_power)
            .sum();
        assert!((s.core_power() - expected).abs() < 1e-9);
        assert_eq!(s.l2, 0.0);
    }

    #[test]
    fn power_scales_with_activity() {
        let model = PowerModel::default_90nm(3.6e9);
        let lo = ActivityCounters {
            cycles: 100_000,
            int_rf_accesses: 100_000,
            ..Default::default()
        };
        let hi = ActivityCounters {
            cycles: 100_000,
            int_rf_accesses: 400_000,
            ..Default::default()
        };
        let pl = model.convert(&lo).unit_power(UnitKind::IntRegFile);
        let ph = model.convert(&hi).unit_power(UnitKind::IntRegFile);
        let idle = model.table().get(UnitKind::IntRegFile).idle_power;
        assert!(((ph - idle) / (pl - idle) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_reference_covers_blocks_and_scales_with_area() {
        let fp = Floorplan::ppc_cmp(4);
        let leak = leakage_reference(&fp, DEFAULT_LOGIC_LEAKAGE, DEFAULT_SRAM_LEAKAGE);
        assert_eq!(leak.len(), fp.len());
        let total: f64 = leak.iter().sum();
        assert!(total > 2.0 && total < 20.0, "total leakage {total} W");
        // The L2 (largest block) must not dominate despite its area,
        // thanks to the lower SRAM density.
        let l2 = fp.blocks_of_kind(UnitKind::L2)[0];
        assert!(leak[l2] < total / 2.0);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn empty_interval_rejected() {
        PowerModel::default_90nm(3.6e9).convert(&ActivityCounters::default());
    }

    #[test]
    fn counters_carry_migration_proxies() {
        let s = warm_sample(StreamProfile::generic_fp(), 4);
        assert!(s.fp_rf_per_cycle > 0.0);
        assert!(s.int_rf_per_cycle > 0.0);
    }
}
