//! End-to-end tests over real sockets: serving tiers, admission
//! control, deadlines, and — the contract the subsystem exists for —
//! graceful drain under concurrent load.

use dtm_serve::server::ShutdownReport;
use dtm_serve::{Client, Request, Response, ResultSource, Server, ServerConfig, SimRequest};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dtm-serve-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A quick cold request: unique seeds defeat the memo so the cell is
/// actually simulated.
fn cold_request(seed: u64) -> SimRequest {
    SimRequest {
        duration_s: Some(0.005),
        seed: Some(seed),
        ..SimRequest::standard("workload1", "dvfs/dist/sensor")
    }
}

#[test]
fn simulate_round_trip_and_serving_tiers() {
    let cache_dir = tmpdir("tiers");
    let mut cfg = ServerConfig::fast_test();
    cfg.workers = 2;
    cfg.cache = Some(dtm_harness::ResultCache::new(&cache_dir));
    let server = Server::spawn(cfg).unwrap();
    let addr = server.addr();

    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();

    let req = cold_request(1);
    let first = match client.simulate(req.clone()).unwrap() {
        Response::Result(r) => r,
        other => panic!("expected result, got {other:?}"),
    };
    assert_eq!(first.source, ResultSource::Simulated);
    assert!(first.result.instructions > 0.0);
    assert_eq!(first.result.cores, 4);

    // Same cell again: served from the in-memory memo, identical result.
    let second = match client.simulate(req.clone()).unwrap() {
        Response::Result(r) => r,
        other => panic!("expected result, got {other:?}"),
    };
    assert_eq!(second.source, ResultSource::Memo);
    assert_eq!(second.key, first.key);
    assert_eq!(second.result, first.result);

    // Metrics surface the request flow.
    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("dtm_serve_accepted_total 2"));
    assert!(metrics.contains("dtm_serve_completed_total 2"));
    assert!(metrics.contains("dtm_serve_request_latency_ns"));

    let report = server.shutdown();
    assert!(report.fully_drained());
    assert_eq!(report.completed, 2);

    // A fresh server over the same cache directory serves the cell from
    // disk — the keyspace is shared across processes and with the sweep
    // harness.
    let mut cfg2 = ServerConfig::fast_test();
    cfg2.workers = 1;
    cfg2.cache = Some(dtm_harness::ResultCache::new(&cache_dir));
    let server2 = Server::spawn(cfg2).unwrap();
    let mut client2 = Client::connect(server2.addr()).unwrap();
    let third = match client2.simulate(req).unwrap() {
        Response::Result(r) => r,
        other => panic!("expected result, got {other:?}"),
    };
    assert_eq!(third.source, ResultSource::Disk);
    assert_eq!(third.key, first.key);
    assert_eq!(third.result, first.result);
    assert!(server2.shutdown().fully_drained());

    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn bad_requests_get_descriptive_errors_not_hangups() {
    let server = Server::spawn(ServerConfig::fast_test()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Unknown workload.
    let resp = client
        .simulate(SimRequest::standard("workload99", "dvfs/dist/sensor"))
        .unwrap();
    match resp {
        Response::Error { message } => assert!(message.contains("workload99")),
        other => panic!("expected error, got {other:?}"),
    }

    // Unparsable policy.
    let resp = client
        .simulate(SimRequest::standard("workload1", "overclock"))
        .unwrap();
    assert!(matches!(resp, Response::Error { .. }));

    // A syntactically broken frame still gets an error response and the
    // connection stays usable.
    let resp = client.call(&Request::Ping).unwrap();
    match resp {
        Response::Pong { info: Some(info) } => {
            assert_eq!(info.version, env!("CARGO_PKG_VERSION"));
            assert!(info.workers >= 1);
        }
        other => panic!("expected pong with capabilities, got {other:?}"),
    }

    assert!(server.shutdown().fully_drained());
}

#[test]
fn expired_deadlines_are_answered_with_timeout() {
    let mut cfg = ServerConfig::fast_test();
    cfg.workers = 1; // serialize: the first job occupies the only worker
    let server = Server::spawn(cfg).unwrap();
    let addr = server.addr();

    // Occupy the worker with a cold simulation…
    let blocker = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.simulate(cold_request(100)).unwrap()
    });
    std::thread::sleep(Duration::from_millis(10));

    // …then queue a request whose deadline will certainly lapse while
    // the worker is busy.
    let mut client = Client::connect(addr).unwrap();
    let req = SimRequest {
        deadline_ms: Some(1),
        ..cold_request(101)
    };
    let resp = client.simulate(req).unwrap();
    match resp {
        Response::Timeout { waited_ms } => assert!(waited_ms >= 1),
        // If the blocker finished implausibly fast the request may
        // still be served; accept that but flag it loudly.
        Response::Result(_) => eprintln!("warning: deadline test raced (worker too fast)"),
        other => panic!("expected timeout, got {other:?}"),
    }
    assert!(matches!(blocker.join().unwrap(), Response::Result(_)));

    let report = server.shutdown();
    assert!(report.fully_drained(), "report: {report:?}");
}

#[test]
fn admission_control_rejects_rather_than_buffers() {
    let mut cfg = ServerConfig::fast_test();
    cfg.workers = 1;
    cfg.queue_capacity = 1;
    let server = Server::spawn(cfg).unwrap();
    let addr = server.addr();

    // Fill the worker, then the 1-slot queue, then overflow.
    let t1 = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.simulate(cold_request(200)).unwrap()
    });
    std::thread::sleep(Duration::from_millis(10));
    let t2 = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.simulate(cold_request(201)).unwrap()
    });
    std::thread::sleep(Duration::from_millis(10));

    let mut overflow = Client::connect(addr).unwrap();
    let mut rejections = 0;
    for seed in 300..310 {
        if let Response::Overloaded { .. } = overflow.simulate(cold_request(seed)).unwrap() {
            rejections += 1;
        }
    }
    assert!(
        rejections > 0,
        "a 1-deep queue behind a busy worker must reject part of a 10-burst"
    );
    assert!(matches!(t1.join().unwrap(), Response::Result(_)));
    assert!(matches!(t2.join().unwrap(), Response::Result(_)));

    let report = server.shutdown();
    assert!(report.fully_drained(), "report: {report:?}");
    assert_eq!(report.rejected, rejections);
}

/// The acceptance test for graceful drain: initiate shutdown while
/// concurrent clients are mid-flood and verify the accounting identity
/// — every response decodes (zero torn frames) and the number of
/// result/timeout responses received by clients equals the number of
/// requests the server admitted.
#[test]
fn shutdown_under_load_drains_every_accepted_request() {
    let mut cfg = ServerConfig::fast_test();
    cfg.workers = 2;
    cfg.queue_capacity = 32;
    let server = Server::spawn(cfg).unwrap();
    let addr = server.addr();

    const CLIENTS: u64 = 6;
    const PER_CLIENT: u64 = 50;

    #[derive(Default)]
    struct ClientTally {
        results: u64,
        timeouts: u64,
        overloaded: u64,
        errors: u64,
        disconnects: u64,
    }

    let flood: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut tally = ClientTally::default();
                let mut client = match Client::connect(addr) {
                    Ok(cl) => cl,
                    Err(_) => return tally,
                };
                for i in 0..PER_CLIENT {
                    // Unique seed per request: every admitted request is
                    // a real simulation competing for the workers.
                    match client.simulate(cold_request(1000 + c * PER_CLIENT + i)) {
                        Ok(Response::Result(_)) => tally.results += 1,
                        Ok(Response::Timeout { .. }) => tally.timeouts += 1,
                        Ok(Response::Overloaded { .. }) => tally.overloaded += 1,
                        Ok(_) => tally.errors += 1,
                        Err(_) => {
                            // Hung up mid-drain before this request was
                            // admitted; nothing owed to us.
                            tally.disconnects += 1;
                            break;
                        }
                    }
                }
                tally
            })
        })
        .collect();

    // Let the flood establish in-flight and queued work, then pull the
    // plug while requests are still arriving.
    std::thread::sleep(Duration::from_millis(60));
    let report: ShutdownReport = server.shutdown();

    let mut received = ClientTally::default();
    for t in flood {
        let tally = t.join().unwrap();
        received.results += tally.results;
        received.timeouts += tally.timeouts;
        received.overloaded += tally.overloaded;
        received.errors += tally.errors;
        received.disconnects += tally.disconnects;
    }

    assert_eq!(received.errors, 0, "no malformed or error responses");
    assert!(
        report.accepted > 0,
        "the flood must have had admitted work in flight"
    );
    // The drain identity, measured on the client side of the wire:
    // every admitted request produced exactly one result-or-timeout
    // response that reached its client intact.
    assert_eq!(
        received.results + received.timeouts,
        report.accepted,
        "responses received must equal requests admitted (report: {report:?})"
    );
    assert_eq!(received.overloaded, report.rejected);
    assert!(report.fully_drained(), "report: {report:?}");
}

/// The shutdown verb flips the handle-visible flag; the binary turns
/// that into a drain (exercised end-to-end by the CI smoke job).
#[test]
fn shutdown_verb_is_visible_on_the_handle() {
    let server = Server::spawn(ServerConfig::fast_test()).unwrap();
    assert!(!server.shutdown_requested());
    let mut client = Client::connect(server.addr()).unwrap();
    client.shutdown().unwrap();
    assert!(server.shutdown_requested());
    assert!(server.shutdown().fully_drained());
}
