//! A minimal blocking client for the serve protocol.
//!
//! One [`Client`] wraps one TCP connection and drives the strict
//! request → response alternation the protocol defines. The load
//! generator opens many of these (one per concurrent connection), the
//! integration suite uses them to script exact scenarios, and the
//! `dtm-dist` coordinator builds its per-worker channels out of them —
//! which is why the client carries its own connect/read timeouts and a
//! `try_clone`-free [`Client::reconnect`] path: a retry loop must never
//! block forever on a half-dead TCP peer.

use crate::protocol::{write_frame, FrameReader, ReadOutcome, Request, Response, ServerInfo};
use crate::request::SimRequest;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A connected protocol client.
///
/// The single `TcpStream` serves both directions ([`write_frame`]
/// issues one `write_all`, so no write buffering is needed), which
/// keeps the client cloneless: reconnecting replaces the stream
/// outright instead of hunting down `try_clone` twins.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    /// The address dialed, for [`Client::reconnect`].
    addr: SocketAddr,
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
}

impl Client {
    /// Connects to a server (no timeouts: reads block indefinitely).
    ///
    /// # Errors
    ///
    /// Propagates resolution and connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let addr = resolve(addr)?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            reader: FrameReader::new(),
            addr,
            connect_timeout: None,
            read_timeout: None,
        })
    }

    /// Connects with a bounded connect timeout (first resolved
    /// address), remembered for later [`Client::reconnect`] calls.
    ///
    /// # Errors
    ///
    /// Propagates resolution and connection failures.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let addr = resolve(addr)?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            reader: FrameReader::new(),
            addr,
            connect_timeout: Some(timeout),
            read_timeout: None,
        })
    }

    /// Bounds every subsequent response wait: a [`Client::call`] whose
    /// reply does not arrive within `timeout` fails with
    /// `io::ErrorKind::TimedOut` instead of blocking forever.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn with_read_timeout(mut self, timeout: Duration) -> io::Result<Client> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.read_timeout = Some(timeout);
        Ok(self)
    }

    /// The peer address this client dials.
    pub fn peer(&self) -> SocketAddr {
        self.addr
    }

    /// Drops the current connection and dials the remembered address
    /// again, discarding any half-received frame. The coordinator calls
    /// this between retries so one wedged connection cannot poison the
    /// next attempt.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (the old stream is already gone).
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = match self.connect_timeout {
            Some(t) => TcpStream::connect_timeout(&self.addr, t)?,
            None => TcpStream::connect(self.addr)?,
        };
        stream.set_nodelay(true)?;
        if let Some(t) = self.read_timeout {
            stream.set_read_timeout(Some(t))?;
        }
        self.stream = stream;
        self.reader = FrameReader::new();
        Ok(())
    }

    /// Sends one request and blocks for its response, honoring the
    /// configured read timeout (if any).
    ///
    /// # Errors
    ///
    /// I/O errors, `TimedOut` when the read timeout elapses, a
    /// mid-response hangup, or an undecodable response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        self.call_inner(request, self.read_timeout)
    }

    /// Like [`Client::call`], but with an explicit overall deadline for
    /// this one exchange (overriding the configured read timeout).
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn call_deadline(&mut self, request: &Request, deadline: Duration) -> io::Result<Response> {
        let prev = self.stream.read_timeout()?;
        let out = self.call_inner(request, Some(deadline));
        // Restore the standing timeout whatever happened.
        let _ = self.stream.set_read_timeout(prev);
        out
    }

    fn call_inner(&mut self, request: &Request, budget: Option<Duration>) -> io::Result<Response> {
        (&mut &self.stream).write_all(&frame_bytes(&request.encode())?)?;
        let start = Instant::now();
        loop {
            if let Some(budget) = budget {
                let remaining = budget
                    .checked_sub(start.elapsed())
                    .unwrap_or(Duration::ZERO);
                if remaining.is_zero() {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("no response within {budget:?}"),
                    ));
                }
                self.stream.set_read_timeout(Some(remaining))?;
            }
            match self.reader.read(&mut &self.stream)? {
                ReadOutcome::Frame(payload) => {
                    return Response::decode(&payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
                }
                ReadOutcome::Eof => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server hung up before responding",
                    ));
                }
                ReadOutcome::TimedOut => {
                    // With an explicit budget the loop re-checks the
                    // remaining time; with only a standing read timeout
                    // the timeout IS the budget.
                    if budget.is_none() {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "no response within the read timeout",
                        ));
                    }
                }
            }
        }
    }

    /// Convenience: one simulate round-trip.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn simulate(&mut self, req: SimRequest) -> io::Result<Response> {
        self.call(&Request::Simulate(Box::new(req)))
    }

    /// Convenience: fetches the Prometheus metrics dump.
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; also errors if the server answers with
    /// anything but a metrics payload.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected metrics, got {other:?}"),
            )),
        }
    }

    /// Convenience: liveness probe.
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; errors unless the server answers `pong`.
    pub fn ping(&mut self) -> io::Result<()> {
        self.ping_info().map(|_| ())
    }

    /// Liveness probe returning the server's version/capability
    /// payload — `None` when the server predates the handshake.
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; errors unless the server answers `pong`.
    pub fn ping_info(&mut self) -> io::Result<Option<ServerInfo>> {
        match self.call(&Request::Ping)? {
            Response::Pong { info } => Ok(info),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected pong, got {other:?}"),
            )),
        }
    }

    /// Convenience: requests a server shutdown.
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; errors unless the server acknowledges.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected shutdown ack, got {other:?}"),
            )),
        }
    }
}

fn resolve(addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing"))
}

/// Encodes one frame into a standalone buffer (header + payload), so a
/// call site without a buffered writer still sends it in one
/// `write_all`.
fn frame_bytes(payload: &[u8]) -> io::Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(4 + payload.len());
    write_frame(&mut buf, payload)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn read_timeout_fires_against_a_silent_listener() {
        // A listener that accepts and then says nothing — the shape of
        // a half-dead peer. The client must fail with TimedOut in
        // bounded time instead of hanging.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            // Keep the accepted socket alive long enough for the
            // client to time out (dropping it would EOF instead).
            let (sock, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(2));
            drop(sock);
        });

        let t0 = Instant::now();
        let mut client = Client::connect_timeout(addr, Duration::from_secs(1))
            .unwrap()
            .with_read_timeout(Duration::from_millis(100))
            .unwrap();
        let err = client.ping().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "{err}");
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "timed out promptly, not after {:?}",
            t0.elapsed()
        );

        // An explicit per-call deadline works too, and overrides the
        // standing timeout.
        let t1 = Instant::now();
        let err = client
            .call_deadline(&Request::Ping, Duration::from_millis(300))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "{err}");
        let waited = t1.elapsed();
        assert!(
            waited >= Duration::from_millis(250) && waited < Duration::from_secs(1),
            "deadline governed the wait: {waited:?}"
        );
        hold.join().unwrap();
    }

    #[test]
    fn reconnect_dials_the_same_peer_with_a_fresh_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Accept two connections; answer a ping only on the second.
            let (first, _) = listener.accept().unwrap();
            drop(first); // hang up on the first connection immediately
            let (second, _) = listener.accept().unwrap();
            let mut fr = FrameReader::new();
            let mut s = &second;
            loop {
                match fr.read(&mut s).unwrap() {
                    ReadOutcome::Frame(p) => {
                        assert_eq!(Request::decode(&p).unwrap(), Request::Ping);
                        let resp = Response::Pong { info: None }.encode();
                        write_frame(&mut s, &resp).unwrap();
                        break;
                    }
                    ReadOutcome::Eof => panic!("client hung up early"),
                    ReadOutcome::TimedOut => continue,
                }
            }
        });

        let mut client = Client::connect_timeout(addr, Duration::from_secs(1))
            .unwrap()
            .with_read_timeout(Duration::from_millis(500))
            .unwrap();
        // First connection is dead: the call fails one way or another
        // (EOF or reset, depending on timing).
        assert!(client.ping().is_err());
        // Reconnect and succeed.
        client.reconnect().unwrap();
        assert_eq!(client.ping_info().unwrap(), None);
        assert_eq!(client.peer(), addr);
        server.join().unwrap();
    }
}
