//! A minimal blocking client for the serve protocol.
//!
//! One [`Client`] wraps one TCP connection and drives the strict
//! request → response alternation the protocol defines. The load
//! generator opens many of these (one per concurrent connection), and
//! the integration suite uses them to script exact scenarios.

use crate::protocol::{read_frame, write_frame, Request, Response};
use crate::request::SimRequest;
use std::io::{self, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Connects with a bounded connect timeout (first resolved address).
    ///
    /// # Errors
    ///
    /// Propagates resolution and connection failures.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
        })?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// I/O errors, a mid-response hangup, or an undecodable response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &request.encode())?;
        self.writer.flush()?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server hung up before responding",
            )
        })?;
        Response::decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Convenience: one simulate round-trip.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn simulate(&mut self, req: SimRequest) -> io::Result<Response> {
        self.call(&Request::Simulate(req))
    }

    /// Convenience: fetches the Prometheus metrics dump.
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; also errors if the server answers with
    /// anything but a metrics payload.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected metrics, got {other:?}"),
            )),
        }
    }

    /// Convenience: liveness probe.
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; errors unless the server answers `pong`.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected pong, got {other:?}"),
            )),
        }
    }

    /// Convenience: requests a server shutdown.
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; errors unless the server acknowledges.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected shutdown ack, got {other:?}"),
            )),
        }
    }
}
