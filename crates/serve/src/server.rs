//! The simulation server: listener, connection handlers, worker pool,
//! and the graceful-drain protocol.
//!
//! ```text
//!            ┌────────────┐   bounded queue    ┌─────────────┐
//!  TCP ──►   │ handler ×N │ ──── push ────►    │  worker ×W  │
//!  accept    │ (1/conn)   │ ◄── mpsc reply ──  │ (simulate / │
//!  loop      └────────────┘                    │  memo/disk) │
//!            admission ctl                     └─────────────┘
//! ```
//!
//! Each accepted connection gets a handler thread that decodes frames
//! and, for `simulate`, resolves the request into a sweep cell. Memo
//! and disk-cache hits are answered inline by the handler (µs-scale
//! work gets no queue hand-off); only cache misses — real simulations
//! — go through admission control. Rejection (queue full or draining)
//! is an immediate `overloaded` response — the server never buffers
//! unbounded work. Workers pop jobs, simulate, and reply over a
//! per-request channel; the handler writes the response back on the
//! connection.
//!
//! **Drain invariant** (pinned by the integration suite): once
//! [`ServerHandle::shutdown`] begins, every request admitted before the
//! queue closed is still answered — with its result, or with `timeout`
//! if its deadline lapses — and only then do the threads exit. So
//! `responses received == accepted − rejected` holds exactly.

use crate::protocol::{
    write_frame, FrameReader, ReadOutcome, Request, Response, ResultSource, ServerInfo, SimResponse,
};
use crate::queue::{BoundedQueue, PushError};
use crate::stats::ServeStats;
use dtm_core::{Experiment, RunResult};
use dtm_harness::json::Json;
use dtm_harness::{cell_key, CellKey, Ledger, ResultCache};
use dtm_obs::ObsHandle;
use dtm_workloads::{standard_workloads, TraceGenConfig, TraceLibrary};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Server construction parameters.
#[derive(Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address
    /// is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// Bounded-queue capacity (admission limit).
    pub queue_capacity: usize,
    /// Trace-generation parameters for the shared library.
    pub tracegen: TraceGenConfig,
    /// Base simulation configuration requests override field-by-field.
    pub base_sim: dtm_core::SimConfig,
    /// On-disk result cache (shared keyspace with the sweep harness).
    pub cache: Option<ResultCache>,
    /// Ledger to append one provenance row per simulated request.
    pub ledger: Option<Ledger>,
    /// Generate all standard-workload traces before accepting traffic,
    /// so first requests do not pay trace generation.
    pub prewarm: bool,
    /// Handler poll interval: how often an idle connection checks the
    /// drain flag. Bounds shutdown latency from the handler side.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_capacity: 256,
            tracegen: TraceGenConfig::default(),
            base_sim: dtm_core::SimConfig::default(),
            cache: None,
            ledger: None,
            prewarm: true,
            poll_interval: Duration::from_millis(25),
        }
    }
}

impl ServerConfig {
    /// A configuration suited to tests: short fast-test traces and
    /// runs, no prewarm of the full standard set.
    pub fn fast_test() -> Self {
        ServerConfig {
            tracegen: TraceGenConfig::fast_test(),
            base_sim: dtm_core::SimConfig::fast_test(),
            prewarm: false,
            ..ServerConfig::default()
        }
    }
}

/// One admitted simulate request traveling handler → worker.
struct Job {
    workload: dtm_workloads::Workload,
    policy: dtm_core::PolicySpec,
    variant: dtm_harness::ConfigVariant,
    key: CellKey,
    admitted: Instant,
    deadline: Option<Duration>,
    reply: mpsc::Sender<Response>,
}

/// State shared by the listener, handlers, and workers.
struct Shared {
    queue: BoundedQueue<Job>,
    draining: AtomicBool,
    shutdown_requested: AtomicBool,
    stats: ServeStats,
    obs: ObsHandle,
    lib: Arc<TraceLibrary>,
    base_sim: dtm_core::SimConfig,
    cache: Option<ResultCache>,
    ledger: Option<Ledger>,
    /// In-memory memo of results by content address: the warm path
    /// (~µs) in front of the on-disk cache (~ms). Bounded in practice
    /// by the number of distinct cells a deployment touches; entries
    /// are a few hundred bytes each.
    memo: Mutex<HashMap<u128, RunResult>>,
    poll_interval: Duration,
    /// Worker-pool size, echoed in the ping capability payload.
    workers: usize,
}

/// The entry point: binds, spawns, and hands back a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds the listener, spawns the worker pool and accept loop, and
    /// returns once the server is accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(cfg: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let obs = ObsHandle::enabled_default();
        let stats = ServeStats::new(&obs);
        if let Some(cache) = &cfg.cache {
            cache.bind_obs(&obs);
        }

        let lib = Arc::new(TraceLibrary::new(cfg.tracegen.clone()));
        if cfg.prewarm {
            // Generate every standard benchmark trace up front, in
            // parallel, so the first wave of requests starts hot.
            std::thread::scope(|s| {
                for w in standard_workloads() {
                    let lib = &lib;
                    s.spawn(move || {
                        for b in w.resolve() {
                            let _ = lib.trace(&b);
                        }
                    });
                }
            });
        }

        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            stats: stats.clone(),
            obs: obs.clone(),
            lib,
            base_sim: cfg.base_sim.clone(),
            cache: cfg.cache,
            ledger: cfg.ledger,
            memo: Mutex::new(HashMap::new()),
            poll_interval: cfg.poll_interval,
            workers: cfg.workers.max(1),
        });

        let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dtm-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker thread")
            })
            .collect();

        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("dtm-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &handlers))
                .expect("spawn accept thread")
        };

        Ok(ServerHandle {
            addr,
            obs,
            stats,
            shared,
            workers,
            handlers,
            accept_thread: Some(accept_thread),
        })
    }
}

/// A running server: its address, instruments, and the drain control.
pub struct ServerHandle {
    addr: SocketAddr,
    obs: ObsHandle,
    stats: ServeStats,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's observability registry.
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// The server's request-flow instruments.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Whether a client has sent the `shutdown` verb. The owner of the
    /// handle decides when to act on it (see the `dtm_serve` binary).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::Acquire)
    }

    /// Gracefully drains and stops the server:
    ///
    /// 1. stop admitting (drain flag + queue close → new simulate
    ///    requests get `overloaded`),
    /// 2. unblock and join the accept loop,
    /// 3. join workers — they finish every already-admitted job first,
    /// 4. join handlers — each writes its last response, then sees the
    ///    drain flag at its next poll and hangs up.
    ///
    /// Every admitted request is answered before this returns.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.queue.close();
        // The accept loop blocks in accept(); a throwaway local
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().unwrap());
        for h in handlers {
            let _ = h.join();
        }
        ShutdownReport {
            accepted: self.stats.accepted.get(),
            rejected: self.stats.rejected.get(),
            completed: self.stats.completed.get(),
            timeouts: self.stats.timeouts.get(),
        }
    }
}

/// Final request-flow accounting returned by a graceful shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Simulate requests admitted over the server's lifetime.
    pub accepted: u64,
    /// Simulate requests refused by admission control.
    pub rejected: u64,
    /// Admitted requests answered with a result.
    pub completed: u64,
    /// Admitted requests answered with `timeout`.
    pub timeouts: u64,
}

impl ShutdownReport {
    /// The drain invariant: admitted == completed + timeouts.
    pub fn fully_drained(&self) -> bool {
        self.accepted == self.completed + self.timeouts
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for conn in listener.incoming() {
        if shared.draining.load(Ordering::Acquire) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared.stats.connections.inc();
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("dtm-serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &shared);
            })
            .expect("spawn connection handler");
        handlers.lock().unwrap().push(handle);
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.poll_interval))?;
    let mut reader = FrameReader::new();
    loop {
        let payload = match reader.read(&mut stream)? {
            ReadOutcome::Frame(p) => p,
            ReadOutcome::Eof => return Ok(()),
            ReadOutcome::TimedOut => {
                if shared.draining.load(Ordering::Acquire) {
                    return Ok(());
                }
                continue;
            }
        };
        let response = match Request::decode(&payload) {
            Err(message) => {
                shared.stats.errors.inc();
                Response::Error { message }
            }
            Ok(Request::Ping) => Response::Pong {
                info: Some(ServerInfo {
                    version: env!("CARGO_PKG_VERSION").into(),
                    workers: shared.workers,
                    cache: shared.cache.is_some(),
                    base_sim: format!("{:?}", shared.base_sim),
                    tracegen: format!("{:?}", shared.lib.config()),
                }),
            },
            Ok(Request::Metrics) => Response::Metrics {
                text: shared.obs.prometheus(),
            },
            Ok(Request::Shutdown) => {
                shared.shutdown_requested.store(true, Ordering::Release);
                Response::ShuttingDown
            }
            Ok(Request::Simulate(req)) => serve_simulate(shared, &req),
        };
        write_frame(&mut stream, &response.encode())?;
    }
}

/// Admission path for one simulate request: resolve, key, enqueue,
/// await the worker's reply.
fn serve_simulate(shared: &Arc<Shared>, req: &crate::request::SimRequest) -> Response {
    let resolved = match req.resolve(&shared.base_sim) {
        Ok(r) => r,
        Err(message) => {
            shared.stats.errors.inc();
            return Response::Error { message };
        }
    };
    let key = cell_key(
        &resolved.workload,
        resolved.policy,
        &resolved.variant.sim,
        &resolved.variant.dtm,
        &resolved.variant.faults,
        shared.lib.config(),
        env!("CARGO_PKG_VERSION"),
    );
    // Fast path: memo and disk hits are answered inline (~µs / ~ms),
    // without occupying a worker or paying two queue hand-offs. Only
    // actual simulations contend for admission.
    let admitted = Instant::now();
    if let Some(hit) = shared.memo.lock().unwrap().get(&key.0).cloned() {
        shared.stats.accepted.inc();
        return complete(
            shared,
            key,
            hit,
            ResultSource::Memo,
            admitted,
            Duration::ZERO,
        );
    }
    if let Some(cache) = &shared.cache {
        if let Some(hit) = cache.load(key) {
            shared.memo.lock().unwrap().insert(key.0, hit.clone());
            shared.stats.accepted.inc();
            return complete(
                shared,
                key,
                hit,
                ResultSource::Disk,
                admitted,
                Duration::ZERO,
            );
        }
    }
    if shared.draining.load(Ordering::Acquire) {
        shared.stats.rejected.inc();
        return Response::Overloaded {
            queue_depth: shared.queue.len(),
        };
    }
    let (tx, rx) = mpsc::channel();
    let job = Job {
        workload: resolved.workload,
        policy: resolved.policy,
        variant: resolved.variant,
        key,
        admitted,
        deadline: req.deadline_ms.map(Duration::from_millis),
        reply: tx,
    };
    match shared.queue.push(job) {
        Ok(depth) => {
            shared.stats.accepted.inc();
            shared.stats.queue_depth.set(depth as i64);
        }
        Err((_, PushError::Full | PushError::Closed)) => {
            shared.stats.rejected.inc();
            return Response::Overloaded {
                queue_depth: shared.queue.len(),
            };
        }
    }
    // The worker owns the only sender; a drop without a send cannot
    // happen on the drain path (workers answer every popped job), so a
    // RecvError indicates a worker panic — surface it as an error.
    rx.recv().unwrap_or_else(|_| {
        shared.stats.errors.inc();
        Response::Error {
            message: "internal: worker dropped the request".into(),
        }
    })
}

fn worker_loop(shared: &Arc<Shared>, worker_id: usize) {
    while let Some(job) = shared.queue.pop() {
        shared.stats.queue_depth.set(shared.queue.len() as i64);
        let waited = job.admitted.elapsed();
        if let Some(deadline) = job.deadline {
            if waited > deadline {
                shared.stats.timeouts.inc();
                let _ = job.reply.send(Response::Timeout {
                    waited_ms: waited.as_millis() as u64,
                });
                continue;
            }
        }
        let response = execute(shared, &job, worker_id, waited);
        let _ = job.reply.send(response);
    }
}

/// Records a completion and builds the result response. Every call
/// must be paired with exactly one earlier `accepted` increment — the
/// drain identity `accepted == completed + timeouts` depends on it.
fn complete(
    shared: &Arc<Shared>,
    key: CellKey,
    result: RunResult,
    source: ResultSource,
    admitted: Instant,
    waited: Duration,
) -> Response {
    let wall = admitted.elapsed();
    shared.stats.completed.inc();
    shared.stats.latency.record(wall.as_nanos() as u64);
    shared.stats.queue_wait.record(waited.as_nanos() as u64);
    Response::Result(Box::new(SimResponse {
        key: key.hex(),
        source,
        wall_us: wall.as_micros() as u64,
        queue_us: waited.as_micros() as u64,
        result,
    }))
}

/// Serves one job from the memo, the disk cache, or a fresh simulation.
fn execute(shared: &Arc<Shared>, job: &Job, worker_id: usize, waited: Duration) -> Response {
    // A sibling request may have populated the memo while this one
    // queued; answering from it keeps identical concurrent requests
    // from simulating twice.
    if let Some(hit) = shared.memo.lock().unwrap().get(&job.key.0).cloned() {
        return complete(
            shared,
            job.key,
            hit,
            ResultSource::Memo,
            job.admitted,
            waited,
        );
    }

    let exp = Experiment::new_shared(
        Arc::clone(&shared.lib),
        job.variant.sim.clone(),
        job.variant.dtm,
    )
    .with_faults(job.variant.faults.clone());
    let sim_start = Instant::now();
    let result = match exp.run(&job.workload, job.policy) {
        Ok(r) => r,
        Err(e) => {
            shared.stats.errors.inc();
            return Response::Error {
                message: format!("simulation failed: {e}"),
            };
        }
    };
    let sim_wall = sim_start.elapsed();

    shared
        .memo
        .lock()
        .unwrap()
        .insert(job.key.0, result.clone());
    if let Some(cache) = &shared.cache {
        let describe = Json::Obj(vec![
            ("workload".into(), Json::str(&job.workload.id)),
            ("policy".into(), Json::str(job.policy.to_string())),
            ("variant".into(), Json::str(&job.variant.name)),
        ]);
        cache.store(job.key, &describe, &result);
    }
    if let Some(ledger) = &shared.ledger {
        let ts = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let rec = Json::Obj(vec![
            ("ts".into(), Json::u64(ts)),
            ("key".into(), Json::str(job.key.hex())),
            ("workload".into(), Json::str(&job.workload.id)),
            ("mix".into(), Json::str(job.workload.mix_label())),
            ("policy".into(), Json::str(job.policy.to_string())),
            ("variant".into(), Json::str(&job.variant.name)),
            ("cached".into(), Json::Bool(false)),
            ("wall_s".into(), Json::f64(sim_wall.as_secs_f64())),
            ("queue_s".into(), Json::f64(waited.as_secs_f64())),
            ("worker".into(), Json::usize(worker_id)),
            ("result".into(), dtm_harness::codec::result_to_json(&result)),
        ]);
        ledger.append_record(&rec);
    }
    complete(
        shared,
        job.key,
        result,
        ResultSource::Simulated,
        job.admitted,
        waited,
    )
}
