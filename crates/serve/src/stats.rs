//! The server's observability surface.
//!
//! Every instrument lives in one `dtm-obs` registry so a single
//! `metrics` request dumps the whole picture in Prometheus text
//! exposition format: request-flow counters (accepted / rejected /
//! timed-out / completed / failed), the queue-depth gauge admission
//! control steers by, and the request-latency histogram whose log₂
//! buckets yield the p50/p95/p99 the load generator reports.

use dtm_obs::{Counter, Gauge, Histogram, ObsHandle};

/// Instrument bundle threaded through every server component.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Connections accepted by the listener.
    pub connections: Counter,
    /// Simulate requests admitted to the queue.
    pub accepted: Counter,
    /// Simulate requests refused by admission control (queue full or
    /// draining).
    pub rejected: Counter,
    /// Admitted requests abandoned because their deadline elapsed
    /// before a worker started them.
    pub timeouts: Counter,
    /// Admitted requests completed with a result.
    pub completed: Counter,
    /// Requests answered with an error (malformed, unmappable, or
    /// failed simulation).
    pub errors: Counter,
    /// Current queue backlog.
    pub queue_depth: Gauge,
    /// Accept-to-response latency of completed requests (ns).
    pub latency: Histogram,
    /// Queue-wait of completed requests (ns).
    pub queue_wait: Histogram,
}

impl ServeStats {
    /// Registers the full instrument set on `obs` (all instruments are
    /// inert if the handle is disabled).
    pub fn new(obs: &ObsHandle) -> Self {
        ServeStats {
            connections: obs.counter("dtm_serve_connections_total"),
            accepted: obs.counter("dtm_serve_accepted_total"),
            rejected: obs.counter("dtm_serve_rejected_total"),
            timeouts: obs.counter("dtm_serve_timeout_total"),
            completed: obs.counter("dtm_serve_completed_total"),
            errors: obs.counter("dtm_serve_error_total"),
            queue_depth: obs.gauge("dtm_serve_queue_depth"),
            latency: obs.histogram("dtm_serve_request_latency_ns"),
            queue_wait: obs.histogram("dtm_serve_queue_wait_ns"),
        }
    }

    /// Accounting identity the drain test pins down: every admitted
    /// request is eventually answered exactly once.
    pub fn answered(&self) -> u64 {
        self.completed.get() + self.timeouts.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_surface_in_the_prometheus_dump() {
        let obs = ObsHandle::enabled_default();
        let stats = ServeStats::new(&obs);
        stats.accepted.add(3);
        stats.completed.add(2);
        stats.timeouts.inc();
        stats.queue_depth.set(5);
        stats.latency.record(1_500_000);
        let text = obs.prometheus();
        assert!(text.contains("dtm_serve_accepted_total 3"));
        assert!(text.contains("dtm_serve_queue_depth 5"));
        assert!(text.contains("dtm_serve_request_latency_ns"));
        assert_eq!(stats.answered(), 3);
    }

    #[test]
    fn disabled_handle_makes_every_instrument_inert() {
        let stats = ServeStats::new(&ObsHandle::disabled());
        stats.accepted.inc();
        stats.queue_depth.set(9);
        assert_eq!(stats.accepted.get(), 0);
        assert_eq!(stats.queue_depth.get(), 0);
    }
}
