//! `dtm_serve` — the networked simulation service.
//!
//! ```text
//! dtm_serve [--addr HOST:PORT] [--workers N] [--queue N]
//!           [--fast-traces] [--cache | --no-cache] [--ledger]
//!           [--port-file PATH]
//! ```
//!
//! Binds (port 0 = ephemeral), prints the bound address on stdout, and
//! serves until a client sends the `shutdown` verb, then drains
//! gracefully and exits 0 (non-zero if the drain accounting fails).
//! `--port-file` writes the bound port to a file so scripts (the CI
//! smoke job) can discover an ephemeral port race-free.

use dtm_harness::{Ledger, ResultCache};
use dtm_serve::{Server, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: dtm_serve [--addr HOST:PORT] [--workers N] [--queue N] \
         [--fast-traces] [--no-cache] [--ledger] [--port-file PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServerConfig::default();
    let mut use_cache = true;
    let mut use_ledger = false;
    let mut port_file: Option<String> = None;

    fn value(args: &[String], i: &mut usize, name: &str) -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {name}");
            usage()
        })
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => cfg.addr = value(&args, &mut i, "--addr"),
            "--workers" => {
                cfg.workers = value(&args, &mut i, "--workers")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--queue" => {
                cfg.queue_capacity = value(&args, &mut i, "--queue")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--fast-traces" => {
                cfg.tracegen = dtm_workloads::TraceGenConfig::fast_test();
                cfg.base_sim = dtm_core::SimConfig::fast_test();
            }
            "--cache" => use_cache = true,
            "--no-cache" => use_cache = false,
            "--ledger" => use_ledger = true,
            "--port-file" => port_file = Some(value(&args, &mut i, "--port-file")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
        i += 1;
    }

    if use_cache {
        cfg.cache = Some(ResultCache::default_location());
    }
    if use_ledger {
        cfg.ledger = Some(Ledger::default_location());
    }

    let handle = match Server::spawn(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("dtm_serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = handle.addr();
    println!("dtm_serve listening on {addr}");
    if let Some(path) = port_file {
        // Written atomically (temp + rename) so a polling script never
        // reads a half-written port number.
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, format!("{}\n", addr.port())).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }

    while !handle.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("dtm_serve: shutdown requested, draining…");
    let report = handle.shutdown();
    eprintln!(
        "dtm_serve: drained — accepted {} rejected {} completed {} timeouts {}",
        report.accepted, report.rejected, report.completed, report.timeouts
    );
    if !report.fully_drained() {
        eprintln!("dtm_serve: drain accounting violated");
        std::process::exit(1);
    }
}
