//! `dtm-serve`: the DTM simulation engine as a networked service.
//!
//! The sweep harness answers "run this grid"; this crate answers "run
//! this cell, now, for a remote caller" — the shape a design-space
//! exploration GUI, a CI regression gate, or a shared lab box needs.
//! It is a deliberately dependency-free server built on
//! `std::net::TcpListener` and the harness's own JSON model:
//!
//! - **Protocol** ([`protocol`]): length-prefixed JSON frames; verbs
//!   `simulate`, `metrics` (Prometheus text; `GET /metrics` accepted as
//!   an alias), `ping`, `shutdown`.
//! - **Requests** ([`request`]): a [`SimRequest`] names a workload (or
//!   an explicit benchmark tuple), a policy in wire spelling, optional
//!   config overrides and a fault preset — and resolves into exactly
//!   the cell the sweep harness would run, sharing its content address
//!   and therefore its caches.
//! - **Admission control** ([`queue`]): a bounded queue; a full (or
//!   draining) queue answers `overloaded` immediately. Memory stays
//!   bounded at any offered load.
//! - **Deadlines**: a request's `deadline_ms` is checked when a worker
//!   picks it up; expired work is abandoned with a `timeout` response
//!   instead of burning a worker on an answer nobody awaits.
//! - **Serving tiers** ([`server`]): an in-memory memo, then the
//!   on-disk content-addressed [`dtm_harness::ResultCache`], then a
//!   fresh simulation on the worker pool (one shared prewarmed
//!   [`dtm_workloads::TraceLibrary`]).
//! - **Graceful drain**: shutdown stops admitting, answers everything
//!   already admitted, then exits — `accepted == completed + timeouts`
//!   exactly (see [`server::ShutdownReport::fully_drained`]).
//! - **Observability** ([`stats`]): request-flow counters, a
//!   queue-depth gauge, and latency histograms, all dumped via the
//!   `metrics` verb.
//!
//! The companion binaries are `dtm_serve` (this crate) and
//! `dtm_loadgen` (in `dtm-bench`), which drives a server at a fixed
//! arrival rate and writes `results/BENCH_serve.json`.

pub mod client;
pub mod protocol;
pub mod queue;
pub mod request;
pub mod server;
pub mod stats;

pub use client::Client;
pub use protocol::{ProtocolError, Request, Response, ResultSource, ServerInfo, SimResponse};
pub use request::SimRequest;
pub use server::{Server, ServerConfig, ServerHandle, ShutdownReport};
pub use stats::ServeStats;
