//! Wire protocol: length-prefixed JSON frames and the request/response
//! vocabulary.
//!
//! A frame is a big-endian `u32` payload length followed by that many
//! bytes of UTF-8 JSON. Both directions use the same framing; a
//! connection carries a strict request → response alternation. The
//! payload vocabulary is deliberately small — four request verbs, seven
//! response verbs — and every message is a flat JSON object whose
//! `verb` field selects the variant, so the protocol stays greppable in
//! a packet capture and trivially versionable (unknown fields are
//! ignored, unknown verbs are an explicit error response, not a dead
//! connection).

use crate::request::SimRequest;
use dtm_core::RunResult;
use dtm_harness::codec::{result_from_json, result_to_json};
use dtm_harness::json::Json;
use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload, server- and client-side.
/// A simulate request is a few hundred bytes and a result response a
/// few KiB; anything near this limit is a corrupt or hostile length
/// prefix, and rejecting it keeps one connection from ballooning the
/// server's memory.
pub const MAX_FRAME: u32 = 4 * 1024 * 1024;

/// A typed framing violation, carried as the source of the `io::Error`
/// the codec functions return. Callers that need to distinguish "the
/// peer is speaking garbage" (drop the worker) from transient socket
/// errors (retry) classify with [`ProtocolError::classify`] instead of
/// string-matching error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// A length prefix (or outgoing payload) exceeded [`MAX_FRAME`].
    Oversize {
        /// The offending length, in bytes.
        len: u64,
    },
    /// The connection closed mid-frame (torn header or short payload).
    Truncated,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Oversize { len } => {
                write!(f, "frame of {len} B exceeds MAX_FRAME ({MAX_FRAME} B)")
            }
            ProtocolError::Truncated => write!(f, "connection closed mid-frame"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl ProtocolError {
    /// Extracts the protocol violation behind an `io::Error`, if that
    /// is what it wraps.
    pub fn classify(e: &io::Error) -> Option<ProtocolError> {
        e.get_ref()
            .and_then(|inner| inner.downcast_ref::<ProtocolError>())
            .copied()
    }

    fn oversize(len: u64) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, ProtocolError::Oversize { len })
    }

    fn truncated() -> io::Error {
        io::Error::new(io::ErrorKind::UnexpectedEof, ProtocolError::Truncated)
    }
}

/// Writes one frame as a single buffered `write_all` (header and
/// payload in one syscall on the happy path).
///
/// # Errors
///
/// Propagates I/O errors; refuses payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(ProtocolError::oversize(payload.len() as u64));
    }
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Reads one frame from a blocking stream.
///
/// Returns `Ok(None)` on a clean EOF *at a frame boundary* (the peer
/// hung up between requests); EOF mid-frame is an error. Only suitable
/// for sockets without read timeouts — the server side uses
/// [`FrameReader`], which survives timeouts with partial bytes buffered.
///
/// # Errors
///
/// Propagates I/O errors; rejects length prefixes over [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    // First byte by hand so a boundary EOF is distinguishable from a
    // torn header.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    len[0] = first[0];
    r.read_exact(&mut len[1..]).map_err(truncation)?;
    let n = u32::from_be_bytes(len);
    if n > MAX_FRAME {
        return Err(ProtocolError::oversize(u64::from(n)));
    }
    let mut payload = vec![0u8; n as usize];
    r.read_exact(&mut payload).map_err(truncation)?;
    Ok(Some(payload))
}

/// Maps a mid-frame `UnexpectedEof` onto the typed
/// [`ProtocolError::Truncated`]; other I/O errors pass through.
fn truncation(e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        ProtocolError::truncated()
    } else {
        e
    }
}

/// Outcome of one [`FrameReader::read`] attempt.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// The socket's read timeout elapsed; any partial bytes stay
    /// buffered and the next call resumes where this one stopped.
    TimedOut,
}

/// Incremental frame reader for sockets with a read timeout.
///
/// Server connection handlers poll their socket with a short timeout so
/// they can notice the drain flag between requests. A timeout can land
/// mid-frame; this reader keeps whatever bytes arrived in an internal
/// buffer, so no byte is ever dropped across attempts (which plain
/// `read_exact` cannot guarantee).
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> Self {
        FrameReader::default()
    }

    fn try_extract(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let n = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if n > MAX_FRAME {
            return Err(ProtocolError::oversize(u64::from(n)));
        }
        let total = 4 + n as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }

    /// Reads until one complete frame, EOF, or the stream's read
    /// timeout.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (including EOF mid-frame) and oversized
    /// length prefixes.
    pub fn read(&mut self, stream: &mut impl Read) -> io::Result<ReadOutcome> {
        loop {
            if let Some(frame) = self.try_extract()? {
                return Ok(ReadOutcome::Frame(frame));
            }
            let mut chunk = [0u8; 16 * 1024];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(ReadOutcome::Eof)
                    } else {
                        Err(ProtocolError::truncated())
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadOutcome::TimedOut);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or serve from cache) one simulation. Boxed: a `SimRequest`
    /// carries full config overrides and dwarfs the other variants.
    Simulate(Box<SimRequest>),
    /// Dump the server's metrics in Prometheus text exposition format.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Ask the server to drain and exit.
    Shutdown,
}

impl Request {
    /// Encodes the request as a JSON payload.
    pub fn encode(&self) -> Vec<u8> {
        let json = match self {
            Request::Simulate(req) => {
                let mut fields = vec![("verb".into(), Json::str("simulate"))];
                fields.extend(req.to_fields());
                Json::Obj(fields)
            }
            Request::Metrics => Json::Obj(vec![("verb".into(), Json::str("metrics"))]),
            Request::Ping => Json::Obj(vec![("verb".into(), Json::str("ping"))]),
            Request::Shutdown => Json::Obj(vec![("verb".into(), Json::str("shutdown"))]),
        };
        json.emit().into_bytes()
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed payloads — the
    /// server relays it verbatim in an error response.
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
        let json = Json::parse(text).map_err(|e| format!("malformed request: {e}"))?;
        let verb = json
            .field("verb")
            .and_then(|v| v.as_str())
            .map_err(|_| "request has no string `verb` field".to_string())?;
        match verb {
            "simulate" => Ok(Request::Simulate(Box::new(SimRequest::from_json(&json)?))),
            // `GET /metrics` is accepted as a verb spelling so that
            // scrape configs written against HTTP exporters port over
            // with only a framing shim.
            "metrics" | "GET /metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown verb `{other}`")),
        }
    }
}

/// Where a served result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultSource {
    /// Freshly simulated by a worker.
    Simulated,
    /// Served from the in-memory memo table.
    Memo,
    /// Served from the on-disk content-addressed cache.
    Disk,
}

impl ResultSource {
    fn wire(self) -> &'static str {
        match self {
            ResultSource::Simulated => "sim",
            ResultSource::Memo => "memo",
            ResultSource::Disk => "disk",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "sim" => Ok(ResultSource::Simulated),
            "memo" => Ok(ResultSource::Memo),
            "disk" => Ok(ResultSource::Disk),
            other => Err(format!("unknown result source `{other}`")),
        }
    }
}

/// Version and capability payload a server attaches to its `pong`
/// reply, so a coordinator can refuse workers whose configuration
/// would break the sweep's bit-identical determinism guarantee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    /// Workspace version the server was built from.
    pub version: String,
    /// Simulation worker threads the server runs.
    pub workers: usize,
    /// Whether a content-addressed result cache is attached.
    pub cache: bool,
    /// `Debug` rendering of the server's base `SimConfig` (requests
    /// resolve against it, so it is part of the result identity).
    pub base_sim: String,
    /// `Debug` rendering of the server's trace-generation config.
    pub tracegen: String,
}

/// A completed simulation, as returned to the client.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResponse {
    /// The cell's content address (same keyspace as the sweep cache).
    pub key: String,
    /// Where the result came from.
    pub source: ResultSource,
    /// Wall-clock µs from accept to completion, server-side.
    pub wall_us: u64,
    /// µs the request waited in the queue before a worker picked it up.
    pub queue_us: u64,
    /// The simulation metrics.
    pub result: RunResult,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The simulation completed.
    Result(Box<SimResponse>),
    /// Admission control rejected the request (queue full or draining).
    Overloaded {
        /// Queue depth observed at rejection.
        queue_depth: usize,
    },
    /// The request's deadline elapsed before a worker could start it.
    Timeout {
        /// How long the request had waited when it was abandoned (ms).
        waited_ms: u64,
    },
    /// The request was malformed or unmappable.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Metrics dump in Prometheus text exposition format.
    Metrics {
        /// The exposition text.
        text: String,
    },
    /// Liveness reply, optionally carrying the server's version and
    /// capabilities. Servers predating the handshake send a bare
    /// `pong`; decoding maps that onto `info: None`.
    Pong {
        /// The responding server's self-description, if it sent one.
        info: Option<ServerInfo>,
    },
    /// Acknowledgement that the server is draining.
    ShuttingDown,
}

impl Response {
    /// Encodes the response as a JSON payload.
    pub fn encode(&self) -> Vec<u8> {
        let json = match self {
            Response::Result(r) => Json::Obj(vec![
                ("verb".into(), Json::str("result")),
                ("key".into(), Json::str(&r.key)),
                ("source".into(), Json::str(r.source.wire())),
                ("wall_us".into(), Json::u64(r.wall_us)),
                ("queue_us".into(), Json::u64(r.queue_us)),
                ("result".into(), result_to_json(&r.result)),
            ]),
            Response::Overloaded { queue_depth } => Json::Obj(vec![
                ("verb".into(), Json::str("overloaded")),
                ("queue_depth".into(), Json::usize(*queue_depth)),
            ]),
            Response::Timeout { waited_ms } => Json::Obj(vec![
                ("verb".into(), Json::str("timeout")),
                ("waited_ms".into(), Json::u64(*waited_ms)),
            ]),
            Response::Error { message } => Json::Obj(vec![
                ("verb".into(), Json::str("error")),
                ("message".into(), Json::str(message)),
            ]),
            Response::Metrics { text } => Json::Obj(vec![
                ("verb".into(), Json::str("metrics")),
                ("text".into(), Json::str(text)),
            ]),
            Response::Pong { info } => {
                let mut fields = vec![("verb".into(), Json::str("pong"))];
                if let Some(i) = info {
                    fields.push(("version".into(), Json::str(&i.version)));
                    fields.push(("workers".into(), Json::usize(i.workers)));
                    fields.push(("cache".into(), Json::Bool(i.cache)));
                    fields.push(("base_sim".into(), Json::str(&i.base_sim)));
                    fields.push(("tracegen".into(), Json::str(&i.tracegen)));
                }
                Json::Obj(fields)
            }
            Response::ShuttingDown => Json::Obj(vec![("verb".into(), Json::str("shutting-down"))]),
        };
        json.emit().into_bytes()
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed payloads.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
        let json = Json::parse(text).map_err(|e| format!("malformed response: {e}"))?;
        let verb = json
            .field("verb")
            .and_then(|v| v.as_str())
            .map_err(|_| "response has no string `verb` field".to_string())?;
        let str_field = |name: &str| -> Result<String, String> {
            json.field(name)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .map_err(|e| format!("bad `{name}`: {e}"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            json.field(name)
                .and_then(|v| v.as_u64())
                .map_err(|e| format!("bad `{name}`: {e}"))
        };
        match verb {
            "result" => Ok(Response::Result(Box::new(SimResponse {
                key: str_field("key")?,
                source: ResultSource::parse(&str_field("source")?)?,
                wall_us: u64_field("wall_us")?,
                queue_us: u64_field("queue_us")?,
                result: result_from_json(
                    json.field("result")
                        .map_err(|e| format!("bad result: {e}"))?,
                )
                .map_err(|e| format!("bad result: {e}"))?,
            }))),
            "overloaded" => Ok(Response::Overloaded {
                queue_depth: json
                    .field("queue_depth")
                    .and_then(|v| v.as_usize())
                    .map_err(|e| format!("bad `queue_depth`: {e}"))?,
            }),
            "timeout" => Ok(Response::Timeout {
                waited_ms: u64_field("waited_ms")?,
            }),
            "error" => Ok(Response::Error {
                message: str_field("message")?,
            }),
            "metrics" => Ok(Response::Metrics {
                text: str_field("text")?,
            }),
            "pong" => {
                // A bare pong (pre-handshake server) carries no
                // `version` field; the capability payload is all-or-
                // nothing beyond that.
                let info = if json.field("version").is_ok() {
                    Some(ServerInfo {
                        version: str_field("version")?,
                        workers: json
                            .field("workers")
                            .and_then(|v| v.as_usize())
                            .map_err(|e| format!("bad `workers`: {e}"))?,
                        cache: match json.field("cache") {
                            Ok(Json::Bool(b)) => *b,
                            Ok(other) => return Err(format!("bad `cache`: {other:?}")),
                            Err(e) => return Err(format!("bad `cache`: {e}")),
                        },
                        base_sim: str_field("base_sim")?,
                        tracegen: str_field("tracegen")?,
                    })
                } else {
                    None
                };
                Ok(Response::Pong { info })
            }
            "shutting-down" => Ok(Response::ShuttingDown),
            other => Err(format!("unknown response verb `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"alpha").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"beta-gamma").unwrap();
        let mut r = Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"beta-gamma");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_header_is_an_error_not_a_silent_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        wire.truncate(2); // half a length prefix
        let mut r = Cursor::new(wire);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut wire = (MAX_FRAME + 1).to_be_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 16]);
        let mut r = Cursor::new(wire);
        assert!(read_frame(&mut r).is_err());
        let mut fr = FrameReader::new();
        let mut r2 = Cursor::new((MAX_FRAME + 1).to_be_bytes().to_vec());
        assert!(fr.read(&mut r2).is_err());
    }

    #[test]
    fn frame_reader_survives_byte_at_a_time_delivery() {
        // A reader that yields one byte per read() call, imitating the
        // worst fragmentation a timeout-polled socket can produce.
        struct Trickle(Vec<u8>, usize);
        impl std::io::Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut wire = Vec::new();
        write_frame(&mut wire, b"slow boat").unwrap();
        let mut fr = FrameReader::new();
        match fr.read(&mut Trickle(wire, 0)).unwrap() {
            ReadOutcome::Frame(p) => assert_eq!(p, b"slow boat"),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn control_requests_round_trip() {
        for req in [Request::Metrics, Request::Ping, Request::Shutdown] {
            let back = Request::decode(&req.encode()).unwrap();
            assert_eq!(back, req);
        }
        // The HTTP-flavored metrics spelling maps onto the same verb.
        let get = br#"{"verb":"GET /metrics"}"#;
        assert_eq!(Request::decode(get).unwrap(), Request::Metrics);
    }

    #[test]
    fn malformed_requests_are_described_not_dropped() {
        assert!(Request::decode(b"\xff\xfe").unwrap_err().contains("UTF-8"));
        assert!(Request::decode(b"[1,2]").unwrap_err().contains("verb"));
        assert!(Request::decode(br#"{"verb":"dance"}"#)
            .unwrap_err()
            .contains("dance"));
    }

    #[test]
    fn control_responses_round_trip() {
        for resp in [
            Response::Overloaded { queue_depth: 64 },
            Response::Timeout { waited_ms: 250 },
            Response::Error {
                message: "no such workload".into(),
            },
            Response::Metrics {
                text: "# TYPE x counter\nx 1\n".into(),
            },
            Response::Pong { info: None },
            Response::Pong {
                info: Some(ServerInfo {
                    version: "0.2.0".into(),
                    workers: 4,
                    cache: true,
                    base_sim: "SimConfig { .. }".into(),
                    tracegen: "TraceGenConfig { .. }".into(),
                }),
            },
            Response::ShuttingDown,
        ] {
            let back = Response::decode(&resp.encode()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn bare_pong_from_an_old_server_still_parses() {
        // Pre-handshake servers reply with exactly this payload; the
        // coordinator must keep accepting it (and treat the worker as
        // version-unknown rather than erroring out).
        let old = br#"{"verb":"pong"}"#;
        assert_eq!(
            Response::decode(old).unwrap(),
            Response::Pong { info: None }
        );
        // And unknown extra fields on a modern pong stay ignored.
        let future = br#"{"verb":"pong","version":"9.9.9","workers":2,"cache":false,"base_sim":"s","tracegen":"t","quantum_lanes":64}"#;
        match Response::decode(future).unwrap() {
            Response::Pong { info: Some(i) } => {
                assert_eq!(i.version, "9.9.9");
                assert_eq!(i.workers, 2);
                assert!(!i.cache);
            }
            other => panic!("expected pong+info, got {other:?}"),
        }
    }

    #[test]
    fn oversize_and_truncation_classify_as_protocol_errors() {
        // Oversize outgoing payload.
        let big = vec![0u8; MAX_FRAME as usize + 1];
        let err = write_frame(&mut Vec::new(), &big).unwrap_err();
        assert_eq!(
            ProtocolError::classify(&err),
            Some(ProtocolError::Oversize {
                len: MAX_FRAME as u64 + 1
            })
        );

        // Oversize incoming length prefix, both codec paths.
        let wire = (MAX_FRAME + 1).to_be_bytes().to_vec();
        let err = read_frame(&mut Cursor::new(wire.clone())).unwrap_err();
        assert!(matches!(
            ProtocolError::classify(&err),
            Some(ProtocolError::Oversize { .. })
        ));
        let err = FrameReader::new().read(&mut Cursor::new(wire)).unwrap_err();
        assert!(matches!(
            ProtocolError::classify(&err),
            Some(ProtocolError::Oversize { .. })
        ));

        // Truncation: torn header and short payload.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        for cut in [2, 6] {
            let mut torn = wire.clone();
            torn.truncate(cut);
            let err = read_frame(&mut Cursor::new(torn.clone())).unwrap_err();
            assert_eq!(
                ProtocolError::classify(&err),
                Some(ProtocolError::Truncated),
                "read_frame, cut at {cut}"
            );
            let err = FrameReader::new().read(&mut Cursor::new(torn)).unwrap_err();
            assert_eq!(
                ProtocolError::classify(&err),
                Some(ProtocolError::Truncated),
                "FrameReader, cut at {cut}"
            );
        }

        // An unrelated io::Error classifies as nothing.
        let plain = io::Error::new(io::ErrorKind::ConnectionReset, "peer reset");
        assert_eq!(ProtocolError::classify(&plain), None);
    }

    /// Feeds `wire` to a `FrameReader` in chunks whose boundaries are
    /// chosen by `cuts`, returning every decoded frame.
    fn read_split(wire: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
        // A reader that returns the queued segments one per call, then
        // EOF — each segment delivery may split a frame anywhere.
        struct Segments(Vec<Vec<u8>>);
        impl std::io::Read for Segments {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                loop {
                    if self.0.is_empty() {
                        return Ok(0);
                    }
                    if self.0[0].is_empty() {
                        self.0.remove(0);
                        continue;
                    }
                    let seg = &mut self.0[0];
                    let n = seg.len().min(buf.len());
                    buf[..n].copy_from_slice(&seg[..n]);
                    seg.drain(..n);
                    return Ok(n);
                }
            }
        }
        let mut segments = Vec::new();
        let mut start = 0;
        let mut sorted: Vec<usize> = cuts.iter().map(|&c| c % (wire.len() + 1)).collect();
        sorted.sort_unstable();
        for c in sorted {
            segments.push(wire[start..c.max(start)].to_vec());
            start = c.max(start);
        }
        segments.push(wire[start..].to_vec());
        let mut src = Segments(segments);
        let mut fr = FrameReader::new();
        let mut frames = Vec::new();
        loop {
            match fr.read(&mut src).expect("valid wire decodes") {
                ReadOutcome::Frame(p) => frames.push(p),
                ReadOutcome::Eof => return frames,
                ReadOutcome::TimedOut => unreachable!("Segments never times out"),
            }
        }
    }

    proptest::proptest! {
        /// Any sequence of frames survives any segmentation of the byte
        /// stream: the reader reassembles exactly the payloads written,
        /// in order, regardless of where reads split.
        #[test]
        fn frame_reader_round_trips_over_random_split_boundaries(
            payloads in proptest::collection::vec(
                proptest::collection::vec(0u8..255, 0usize..200),
                1usize..6,
            ),
            cuts in proptest::collection::vec(0usize..5000, 1usize..12),
        ) {
            let mut wire = Vec::new();
            for p in &payloads {
                write_frame(&mut wire, p).unwrap();
            }
            let frames = read_split(&wire, &cuts);
            proptest::prop_assert_eq!(frames, payloads);
        }

        /// Truncating a valid stream anywhere strictly inside a frame
        /// yields the typed truncation error, never a hang or a silent
        /// partial decode.
        #[test]
        fn truncation_anywhere_inside_a_frame_is_typed(
            payload in proptest::collection::vec(0u8..255, 1usize..100),
            cut_seed in 0usize..1_000_000,
        ) {
            let mut wire = Vec::new();
            write_frame(&mut wire, &payload).unwrap();
            let cut = 1 + cut_seed % (wire.len() - 1); // 1..wire.len()
            wire.truncate(cut);
            let mut fr = FrameReader::new();
            let err = match fr.read(&mut Cursor::new(wire)) {
                Err(e) => e,
                Ok(other) => panic!("truncated frame produced {other:?}"),
            };
            proptest::prop_assert_eq!(
                ProtocolError::classify(&err),
                Some(ProtocolError::Truncated)
            );
        }
    }
}
