//! A bounded MPMC job queue with explicit admission control.
//!
//! The server's central invariant — memory stays bounded no matter the
//! offered load — lives here: [`BoundedQueue::push`] never blocks and
//! never grows the queue past its capacity; it *rejects*, and the
//! caller turns the rejection into an `overloaded` response. Workers
//! block in [`BoundedQueue::pop`]. Closing the queue wakes every
//! blocked worker once the backlog is drained, which is exactly the
//! graceful-drain handshake: already-admitted jobs still come out,
//! nothing new goes in.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue has been closed (server draining).
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A capacity-bounded FIFO shared by connection handlers (producers)
/// and simulation workers (consumers).
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current backlog.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the backlog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to admit a job without blocking. On success returns the
    /// resulting depth; on failure hands the job back with the reason.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    #[allow(clippy::result_large_err)] // the Err intentionally carries T back
    pub fn push(&self, item: T) -> Result<usize, (T, PushError)> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err((item, PushError::Closed));
        }
        if st.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        st.items.push_back(item);
        let depth = st.items.len();
        drop(st);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks for the next job. Returns `None` once the queue is closed
    /// *and* drained — the worker-exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.available.wait(st).unwrap();
        }
    }

    /// Closes the queue: subsequent pushes fail, already-queued jobs
    /// still drain, and blocked poppers wake (immediately if the
    /// backlog is already empty).
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admission_is_bounded_and_fifo() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1).unwrap(), 1);
        assert_eq!(q.push(2).unwrap(), 2);
        let (back, why) = q.push(3).unwrap_err();
        assert_eq!((back, why), (3, PushError::Full));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3).unwrap(), 2);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_releases_all_poppers() {
        let q = Arc::new(BoundedQueue::new(8));
        q.push(10).unwrap();
        q.push(11).unwrap();
        q.close();
        let (b, why) = q.push(12).unwrap_err();
        assert_eq!((b, why), (12, PushError::Closed));

        // Admitted items drain even after close; then every popper
        // (including ones that block after the drain) gets None.
        let mut seen = vec![];
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = vec![];
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            seen.extend(h.join().unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![10, 11]);
    }

    #[test]
    fn pop_blocks_until_a_push_arrives() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(99).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(99));
    }

    #[test]
    fn contended_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::new(16));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut admitted = 0u64;
                    for i in 0..500 {
                        if q.push(p * 1000 + i).is_ok() {
                            admitted += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    admitted
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut popped = 0u64;
                    while q.pop().is_some() {
                        popped += 1;
                    }
                    popped
                })
            })
            .collect();
        let admitted: u64 = producers.into_iter().map(|h| h.join().unwrap()).sum();
        q.close();
        let popped: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(admitted, popped, "every admitted item is consumed");
    }
}
