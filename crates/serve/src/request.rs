//! Mapping wire requests onto experiment cells.
//!
//! A [`SimRequest`] is untrusted input: every field is validated here,
//! and the output is exactly the `(Workload, PolicySpec, ConfigVariant)`
//! triple the sweep harness runs — so a served simulation is
//! bit-identical to the same cell run by `SweepRunner`, shares its
//! content address, and therefore shares its cache entries.

use dtm_core::{DtmConfig, GainScheduleConfig, PolicySpec, SimConfig};
use dtm_faults::{FaultConfig, FaultScenario, WatchdogConfig};
use dtm_harness::json::Json;
use dtm_harness::ConfigVariant;
use dtm_workloads::Workload;

/// Widest simulated duration a request may ask for (s). The paper's
/// runs are 0.5 s; ten times that bounds worst-case worker occupancy
/// per request without constraining any legitimate experiment.
pub const MAX_DURATION_S: f64 = 5.0;

/// Most cores a request may configure.
pub const MAX_CORES: usize = 64;

/// The fault-scenario presets a request can name. Each maps onto the
/// same `FaultConfig` constructions the robustness experiment binary
/// uses, injected at 20% of the run.
pub const FAULT_PRESETS: &[&str] = &[
    "none",
    "stuck-hot",
    "stuck-hot+watchdog",
    "dropout+watchdog",
];

/// One simulation request, as decoded from the wire.
///
/// `workload` names a standard Table 4 workload by id (or display
/// name); `benchmarks` instead spells out an explicit 4-tuple of
/// catalog benchmarks. Optional overrides layer onto the server's base
/// configuration; everything absent stays at the server default, so a
/// bare `{"workload":"...","policy":"..."}` request is a paper-default
/// cell.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimRequest {
    /// Standard workload id or display name (exclusive with
    /// `benchmarks`).
    pub workload: Option<String>,
    /// Explicit benchmark names (exclusive with `workload`).
    pub benchmarks: Vec<String>,
    /// Policy triple in wire spelling, e.g. `dvfs/dist/sensor`.
    pub policy: String,
    /// Simulated duration override (s).
    pub duration_s: Option<f64>,
    /// Core-count override.
    pub cores: Option<usize>,
    /// Thermal-threshold override (°C).
    pub threshold_c: Option<f64>,
    /// Sensor-noise seed override.
    pub seed: Option<u64>,
    /// Fault-scenario preset name (see [`FAULT_PRESETS`]).
    pub fault: Option<String>,
    /// Deadline in ms: if no worker has started the request this long
    /// after admission, the server abandons it with a timeout response.
    pub deadline_ms: Option<u64>,
    /// PI proportional-gain override (`dtm-explore` knob).
    pub pi_kp: Option<f64>,
    /// PI integral-gain override.
    pub pi_ki: Option<f64>,
    /// DVFS setpoint margin override (°C below the threshold).
    pub setpoint_margin_c: Option<f64>,
    /// Stop-go trip margin override (°C below the threshold).
    pub trip_margin_c: Option<f64>,
    /// Stop-go stall-duration override (s).
    pub stall_s: Option<f64>,
    /// Migration-interval override (s).
    pub migration_interval_s: Option<f64>,
    /// OS tick (control period) override (s).
    pub os_tick_s: Option<f64>,
    /// Gain-schedule selection (`fixed` / `rao` / `selftune`); absent
    /// means the fixed-gain paper controller.
    pub schedule: Option<String>,
    /// Adaptation strength: Rao `alpha` or self-tuning `rate`
    /// (schedule-specific default when absent).
    pub adapt_rate: Option<f64>,
    /// Adaptation window: Rao `tau_s` or self-tuning `window_s` (s).
    pub adapt_window_s: Option<f64>,
}

/// The gain-schedule names a request can select.
pub const SCHEDULE_NAMES: &[&str] = &["fixed", "rao", "selftune"];

impl SimRequest {
    /// A paper-default request for a standard workload and wire policy.
    pub fn standard(workload: &str, policy: &str) -> Self {
        SimRequest {
            workload: Some(workload.to_string()),
            policy: policy.to_string(),
            ..SimRequest::default()
        }
    }

    /// Serializes into the JSON fields embedded in a `simulate` frame.
    pub fn to_fields(&self) -> Vec<(String, Json)> {
        let mut f = Vec::new();
        if let Some(w) = &self.workload {
            f.push(("workload".into(), Json::str(w)));
        }
        if !self.benchmarks.is_empty() {
            f.push((
                "benchmarks".into(),
                Json::Arr(self.benchmarks.iter().map(Json::str).collect()),
            ));
        }
        f.push(("policy".into(), Json::str(&self.policy)));
        if let Some(d) = self.duration_s {
            f.push(("duration_s".into(), Json::f64(d)));
        }
        if let Some(c) = self.cores {
            f.push(("cores".into(), Json::usize(c)));
        }
        if let Some(t) = self.threshold_c {
            f.push(("threshold_c".into(), Json::f64(t)));
        }
        if let Some(s) = self.seed {
            f.push(("seed".into(), Json::u64(s)));
        }
        if let Some(fault) = &self.fault {
            f.push(("fault".into(), Json::str(fault)));
        }
        if let Some(ms) = self.deadline_ms {
            f.push(("deadline_ms".into(), Json::u64(ms)));
        }
        for (name, v) in self.knob_fields() {
            if let Some(v) = v {
                f.push((name.into(), Json::f64(v)));
            }
        }
        if let Some(s) = &self.schedule {
            f.push(("schedule".into(), Json::str(s)));
        }
        if let Some(v) = self.adapt_rate {
            f.push(("adapt_rate".into(), Json::f64(v)));
        }
        if let Some(v) = self.adapt_window_s {
            f.push(("adapt_window_s".into(), Json::f64(v)));
        }
        f
    }

    /// The optional DTM-knob overrides as `(wire name, value)` pairs —
    /// the single list both codec directions and the dist-backend
    /// expressibility probe iterate.
    fn knob_fields(&self) -> [(&'static str, Option<f64>); 7] {
        [
            ("pi_kp", self.pi_kp),
            ("pi_ki", self.pi_ki),
            ("setpoint_margin_c", self.setpoint_margin_c),
            ("trip_margin_c", self.trip_margin_c),
            ("stall_s", self.stall_s),
            ("migration_interval_s", self.migration_interval_s),
            ("os_tick_s", self.os_tick_s),
        ]
    }

    /// Decodes the request fields of a `simulate` frame.
    ///
    /// # Errors
    ///
    /// Describes the first malformed field.
    pub fn from_json(json: &Json) -> Result<SimRequest, String> {
        let mut req = SimRequest::default();
        if let Ok(w) = json.field("workload") {
            req.workload = Some(
                w.as_str()
                    .map_err(|e| format!("bad `workload`: {e}"))?
                    .to_string(),
            );
        }
        if let Ok(b) = json.field("benchmarks") {
            req.benchmarks = b
                .as_arr()
                .map_err(|e| format!("bad `benchmarks`: {e}"))?
                .iter()
                .map(|v| v.as_str().map(str::to_string))
                .collect::<Result<_, _>>()
                .map_err(|e| format!("bad `benchmarks`: {e}"))?;
        }
        req.policy = json
            .field("policy")
            .and_then(|v| v.as_str())
            .map_err(|e| format!("bad `policy`: {e}"))?
            .to_string();
        if let Ok(v) = json.field("duration_s") {
            req.duration_s = Some(v.as_f64().map_err(|e| format!("bad `duration_s`: {e}"))?);
        }
        if let Ok(v) = json.field("cores") {
            req.cores = Some(v.as_usize().map_err(|e| format!("bad `cores`: {e}"))?);
        }
        if let Ok(v) = json.field("threshold_c") {
            req.threshold_c = Some(v.as_f64().map_err(|e| format!("bad `threshold_c`: {e}"))?);
        }
        if let Ok(v) = json.field("seed") {
            req.seed = Some(v.as_u64().map_err(|e| format!("bad `seed`: {e}"))?);
        }
        if let Ok(v) = json.field("fault") {
            req.fault = Some(
                v.as_str()
                    .map_err(|e| format!("bad `fault`: {e}"))?
                    .to_string(),
            );
        }
        if let Ok(v) = json.field("deadline_ms") {
            req.deadline_ms = Some(v.as_u64().map_err(|e| format!("bad `deadline_ms`: {e}"))?);
        }
        for (name, slot) in [
            ("pi_kp", &mut req.pi_kp),
            ("pi_ki", &mut req.pi_ki),
            ("setpoint_margin_c", &mut req.setpoint_margin_c),
            ("trip_margin_c", &mut req.trip_margin_c),
            ("stall_s", &mut req.stall_s),
            ("migration_interval_s", &mut req.migration_interval_s),
            ("os_tick_s", &mut req.os_tick_s),
        ] {
            if let Ok(v) = json.field(name) {
                *slot = Some(v.as_f64().map_err(|e| format!("bad `{name}`: {e}"))?);
            }
        }
        if let Ok(v) = json.field("schedule") {
            req.schedule = Some(
                v.as_str()
                    .map_err(|e| format!("bad `schedule`: {e}"))?
                    .to_string(),
            );
        }
        for (name, slot) in [
            ("adapt_rate", &mut req.adapt_rate),
            ("adapt_window_s", &mut req.adapt_window_s),
        ] {
            if let Ok(v) = json.field(name) {
                *slot = Some(v.as_f64().map_err(|e| format!("bad `{name}`: {e}"))?);
            }
        }
        Ok(req)
    }

    /// Validates the request against a base configuration and resolves
    /// it into the exact cell the sweep harness would run.
    ///
    /// # Errors
    ///
    /// Describes the first invalid field — unknown workload/benchmark,
    /// unparsable policy, out-of-range override, unknown fault preset.
    pub fn resolve(&self, base_sim: &SimConfig) -> Result<ResolvedRequest, String> {
        let workload = match (&self.workload, self.benchmarks.is_empty()) {
            (Some(_), false) => {
                return Err("request names both `workload` and `benchmarks`".to_string())
            }
            (Some(name), true) => Workload::standard(name)
                .ok_or_else(|| format!("unknown standard workload `{name}`"))?,
            (None, false) => {
                let id = self.benchmarks.join("-");
                Workload::try_from_names(id, &self.benchmarks)?
            }
            (None, true) => {
                return Err("request names neither `workload` nor `benchmarks`".to_string())
            }
        };
        let policy = PolicySpec::parse_wire(&self.policy)?;

        let mut sim = base_sim.clone();
        if let Some(d) = self.duration_s {
            if !d.is_finite() || d <= 0.0 || d > MAX_DURATION_S {
                return Err(format!("duration_s {d} out of range (0, {MAX_DURATION_S}]"));
            }
            sim.duration = d;
        }
        if let Some(c) = self.cores {
            if c == 0 || c > MAX_CORES {
                return Err(format!("cores {c} out of range [1, {MAX_CORES}]"));
            }
            sim.cores = c;
        }
        if let Some(s) = self.seed {
            sim.seed = s;
        }

        let mut dtm = DtmConfig::default();
        if let Some(t) = self.threshold_c {
            if !t.is_finite() || !(40.0..=150.0).contains(&t) {
                return Err(format!("threshold_c {t} out of range [40, 150]"));
            }
            dtm = DtmConfig::with_threshold(t);
        }
        let knob_ranges: [(&str, Option<f64>, f64, f64, &mut f64); 7] = [
            ("pi_kp", self.pi_kp, 1e-6, 10.0, &mut dtm.pi_kp),
            ("pi_ki", self.pi_ki, 1e-3, 1e5, &mut dtm.pi_ki),
            (
                "setpoint_margin_c",
                self.setpoint_margin_c,
                0.1,
                20.0,
                &mut dtm.dvfs_setpoint_margin,
            ),
            (
                "trip_margin_c",
                self.trip_margin_c,
                0.01,
                10.0,
                &mut dtm.stopgo_trip_margin,
            ),
            ("stall_s", self.stall_s, 1e-4, 1.0, &mut dtm.stopgo_stall),
            (
                "migration_interval_s",
                self.migration_interval_s,
                1e-4,
                1.0,
                &mut dtm.migration_interval,
            ),
            ("os_tick_s", self.os_tick_s, 1e-4, 0.1, &mut dtm.os_tick),
        ];
        for (name, value, lo, hi, slot) in knob_ranges {
            if let Some(v) = value {
                if !v.is_finite() || !(lo..=hi).contains(&v) {
                    return Err(format!("{name} {v} out of range [{lo}, {hi}]"));
                }
                *slot = v;
            }
        }
        if dtm.migration_interval < dtm.os_tick {
            return Err(format!(
                "migration_interval_s {} shorter than os_tick_s {}",
                dtm.migration_interval, dtm.os_tick
            ));
        }
        dtm.gain_schedule = self.resolve_schedule()?;

        let faults = match self.fault.as_deref() {
            None | Some("none") => FaultConfig::ideal(),
            Some("stuck-hot") => FaultConfig::unprotected(FaultScenario::stuck_sensor(
                "stuck-hot",
                0,
                0,
                150.0,
                sim.duration * 0.2,
            )),
            Some("stuck-hot+watchdog") => FaultConfig::protected(
                FaultScenario::stuck_sensor("stuck-hot", 0, 0, 150.0, sim.duration * 0.2),
                WatchdogConfig::enabled(),
            ),
            Some("dropout+watchdog") => FaultConfig::protected(
                FaultScenario::dropout_sensor("dropout", 0, 0, sim.duration * 0.2),
                WatchdogConfig::enabled(),
            ),
            Some(other) => {
                return Err(format!(
                    "unknown fault preset `{other}` (known: {})",
                    FAULT_PRESETS.join(", ")
                ))
            }
        };

        let variant = ConfigVariant::new("serve", sim, dtm).with_faults(faults);
        Ok(ResolvedRequest {
            workload,
            policy,
            variant,
        })
    }

    /// Resolves the gain-schedule fields into a validated
    /// [`GainScheduleConfig`]. Adaptation parameters are only
    /// meaningful alongside an adaptive schedule, so supplying them
    /// with `fixed` (or no) schedule is rejected — every wire request
    /// has exactly one spelling per cell.
    fn resolve_schedule(&self) -> Result<GainScheduleConfig, String> {
        let name = self.schedule.as_deref().unwrap_or("fixed");
        if name == "fixed" {
            if self.adapt_rate.is_some() || self.adapt_window_s.is_some() {
                return Err(
                    "adapt_rate/adapt_window_s require an adaptive `schedule` (rao or selftune)"
                        .to_string(),
                );
            }
            return Ok(GainScheduleConfig::Fixed);
        }
        for (field, value, lo, hi) in [
            ("adapt_rate", self.adapt_rate, 0.0, 4.0),
            ("adapt_window_s", self.adapt_window_s, 1e-6, 1.0),
        ] {
            if let Some(v) = value {
                if !v.is_finite() || !(lo..=hi).contains(&v) {
                    return Err(format!("{field} {v} out of range [{lo}, {hi}]"));
                }
            }
        }
        let schedule = match name {
            "rao" => {
                let GainScheduleConfig::Rao { alpha, tau_s } = GainScheduleConfig::rao_default()
                else {
                    unreachable!()
                };
                GainScheduleConfig::Rao {
                    alpha: self.adapt_rate.unwrap_or(alpha),
                    tau_s: self.adapt_window_s.unwrap_or(tau_s),
                }
            }
            "selftune" => {
                let GainScheduleConfig::SelfTuning { rate, window_s } =
                    GainScheduleConfig::selftune_default()
                else {
                    unreachable!()
                };
                let rate = match self.adapt_rate {
                    Some(v) if v >= 1.0 => {
                        return Err(format!("adapt_rate {v} out of range [0, 1) for selftune"))
                    }
                    Some(v) => v,
                    None => rate,
                };
                GainScheduleConfig::SelfTuning {
                    rate,
                    window_s: self.adapt_window_s.unwrap_or(window_s),
                }
            }
            other => {
                return Err(format!(
                    "unknown schedule `{other}` (known: {})",
                    SCHEDULE_NAMES.join(", ")
                ))
            }
        };
        schedule.validate();
        Ok(schedule)
    }
}

/// A request resolved into the cell the harness vocabulary describes.
#[derive(Debug, Clone)]
pub struct ResolvedRequest {
    /// The workload to run.
    pub workload: Workload,
    /// The DTM policy.
    pub policy: PolicySpec,
    /// Configuration variant (sim + dtm + faults).
    pub variant: ConfigVariant,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(req: &SimRequest) -> Json {
        let mut fields = vec![("verb".into(), Json::str("simulate"))];
        fields.extend(req.to_fields());
        Json::parse(&Json::Obj(fields).emit()).unwrap()
    }

    #[test]
    fn wire_round_trip_preserves_every_field() {
        let req = SimRequest {
            workload: None,
            benchmarks: vec!["gzip".into(), "mcf".into(), "ammp".into(), "art".into()],
            policy: "dvfs/dist/sensor".into(),
            duration_s: Some(0.25),
            cores: Some(4),
            threshold_c: Some(90.0),
            seed: Some(7),
            fault: Some("stuck-hot".into()),
            deadline_ms: Some(500),
            pi_kp: Some(0.02),
            pi_ki: Some(300.0),
            setpoint_margin_c: Some(1.5),
            trip_margin_c: Some(0.3),
            stall_s: Some(0.02),
            migration_interval_s: Some(0.02),
            os_tick_s: Some(0.002),
            schedule: Some("rao".into()),
            adapt_rate: Some(1.5),
            adapt_window_s: Some(0.003),
        };
        let back = SimRequest::from_json(&parse(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn schedule_requests_resolve_into_the_dtm_config() {
        let base = SimConfig::fast_test();
        // Bare adaptive schedule: schedule-specific defaults.
        let req = SimRequest {
            schedule: Some("rao".into()),
            ..SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor")
        };
        let r = req.resolve(&base).unwrap();
        assert_eq!(
            r.variant.dtm.gain_schedule,
            GainScheduleConfig::rao_default()
        );

        // Explicit adaptation parameters land verbatim.
        let req = SimRequest {
            schedule: Some("selftune".into()),
            adapt_rate: Some(0.3),
            adapt_window_s: Some(0.004),
            ..SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor")
        };
        let r = req.resolve(&base).unwrap();
        assert_eq!(
            r.variant.dtm.gain_schedule,
            GainScheduleConfig::SelfTuning {
                rate: 0.3,
                window_s: 0.004,
            }
        );

        // Explicit `fixed` and absent schedule resolve identically.
        let req = SimRequest {
            schedule: Some("fixed".into()),
            ..SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor")
        };
        let r = req.resolve(&base).unwrap();
        assert_eq!(r.variant.dtm.gain_schedule, GainScheduleConfig::Fixed);
        assert_eq!(
            r.variant.dtm,
            SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor")
                .resolve(&base)
                .unwrap()
                .variant
                .dtm
        );
    }

    #[test]
    fn bad_schedules_are_rejected() {
        let base = SimConfig::default();
        let std = |f: &dyn Fn(&mut SimRequest)| {
            let mut r = SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor");
            f(&mut r);
            r
        };
        let cases: Vec<(SimRequest, &str)> = vec![
            (
                std(&|r| r.schedule = Some("bangbang".into())),
                "unknown schedule",
            ),
            (
                std(&|r| r.adapt_rate = Some(0.5)),
                "require an adaptive `schedule`",
            ),
            (
                std(&|r| {
                    r.schedule = Some("fixed".into());
                    r.adapt_window_s = Some(0.01);
                }),
                "require an adaptive `schedule`",
            ),
            (
                std(&|r| {
                    r.schedule = Some("rao".into());
                    r.adapt_rate = Some(f64::NAN);
                }),
                "adapt_rate",
            ),
            (
                std(&|r| {
                    r.schedule = Some("selftune".into());
                    r.adapt_rate = Some(1.0);
                }),
                "out of range [0, 1)",
            ),
            (
                std(&|r| {
                    r.schedule = Some("rao".into());
                    r.adapt_window_s = Some(5.0);
                }),
                "adapt_window_s",
            ),
        ];
        for (req, needle) in cases {
            let err = req.resolve(&base).unwrap_err();
            assert!(
                err.contains(needle),
                "error `{err}` should mention `{needle}`"
            );
        }
    }

    #[test]
    fn knob_overrides_land_in_the_dtm_config() {
        let req = SimRequest {
            pi_kp: Some(0.02),
            setpoint_margin_c: Some(1.2),
            migration_interval_s: Some(0.05),
            ..SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor")
        };
        let r = req.resolve(&SimConfig::fast_test()).unwrap();
        assert!((r.variant.dtm.pi_kp - 0.02).abs() < 1e-15);
        assert!((r.variant.dtm.dvfs_setpoint_margin - 1.2).abs() < 1e-15);
        assert!((r.variant.dtm.migration_interval - 0.05).abs() < 1e-15);
        // Untouched knobs keep paper defaults — and with them, the
        // legacy cache-key repr fields.
        assert!((r.variant.dtm.pi_ki - dtm_core::PAPER_PI_KI).abs() < 1e-12);
        r.variant.dtm.validate();
    }

    #[test]
    fn bad_knobs_are_rejected() {
        let base = SimConfig::default();
        let cases: Vec<(SimRequest, &str)> = vec![
            (
                SimRequest {
                    pi_kp: Some(f64::INFINITY),
                    ..SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor")
                },
                "pi_kp",
            ),
            (
                SimRequest {
                    pi_ki: Some(-1.0),
                    ..SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor")
                },
                "pi_ki",
            ),
            (
                SimRequest {
                    os_tick_s: Some(0.5),
                    ..SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor")
                },
                "os_tick_s",
            ),
            (
                SimRequest {
                    os_tick_s: Some(0.02),
                    migration_interval_s: Some(0.001),
                    ..SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor")
                },
                "shorter than os_tick_s",
            ),
        ];
        for (req, needle) in cases {
            let err = req.resolve(&base).unwrap_err();
            assert!(
                err.contains(needle),
                "error `{err}` should mention `{needle}`"
            );
        }
    }

    #[test]
    fn bare_requests_resolve_to_server_defaults() {
        let req = SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor");
        let base = SimConfig::fast_test();
        let r = req.resolve(&base).unwrap();
        assert_eq!(r.workload.display_name(), "gzip-twolf-ammp-lucas");
        assert_eq!(r.policy, PolicySpec::best());
        assert!((r.variant.sim.duration - base.duration).abs() < 1e-15);
        assert!(r.variant.faults.is_ideal());
    }

    #[test]
    fn overrides_land_in_the_variant() {
        let mut req = SimRequest::standard("gzip-twolf-ammp-lucas", "stopgo/global/none");
        req.duration_s = Some(0.125);
        req.threshold_c = Some(100.0);
        req.seed = Some(42);
        req.fault = Some("stuck-hot+watchdog".into());
        let r = req.resolve(&SimConfig::default()).unwrap();
        assert!((r.variant.sim.duration - 0.125).abs() < 1e-15);
        assert_eq!(r.variant.sim.seed, 42);
        assert!((r.variant.dtm.threshold - 100.0).abs() < 1e-12);
        assert!(!r.variant.faults.is_ideal());
        // Fault injection lands at 20% of the (overridden) run.
        assert!((r.variant.faults.scenario.events[0].start - 0.025).abs() < 1e-12);
    }

    #[test]
    fn invalid_requests_are_rejected_with_reasons() {
        let base = SimConfig::default();
        let cases: Vec<(SimRequest, &str)> = vec![
            (SimRequest::default(), "neither"),
            (
                SimRequest::standard("no-such-workload", "dvfs/dist/sensor"),
                "unknown standard workload",
            ),
            (
                SimRequest::standard("gzip-twolf-ammp-lucas", "warp/dist/none"),
                "throttle",
            ),
            (
                SimRequest {
                    duration_s: Some(1e9),
                    ..SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor")
                },
                "out of range",
            ),
            (
                SimRequest {
                    cores: Some(0),
                    ..SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor")
                },
                "out of range",
            ),
            (
                SimRequest {
                    threshold_c: Some(f64::NAN),
                    ..SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor")
                },
                "out of range",
            ),
            (
                SimRequest {
                    fault: Some("meltdown".into()),
                    ..SimRequest::standard("gzip-twolf-ammp-lucas", "dvfs/dist/sensor")
                },
                "unknown fault preset",
            ),
            (
                SimRequest {
                    workload: Some("gzip-twolf-ammp-lucas".into()),
                    benchmarks: vec!["gzip".into()],
                    policy: "dvfs/dist/sensor".into(),
                    ..SimRequest::default()
                },
                "both",
            ),
        ];
        for (req, needle) in cases {
            let err = req.resolve(&base).unwrap_err();
            assert!(
                err.contains(needle),
                "error `{err}` should mention `{needle}`"
            );
        }
    }

    #[test]
    fn explicit_benchmark_tuples_resolve() {
        let req = SimRequest {
            benchmarks: vec!["gzip".into(), "mcf".into(), "ammp".into(), "art".into()],
            policy: "dvfs/global/counter".into(),
            ..SimRequest::default()
        };
        let r = req.resolve(&SimConfig::fast_test()).unwrap();
        assert_eq!(r.workload.benchmarks.len(), 4);
        assert!(req.resolve(&SimConfig::fast_test()).is_ok());
    }
}
